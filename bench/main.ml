(* Benchmark harness: regenerates every table and figure of the paper
   plus the ablation studies listed in DESIGN.md.

   Usage:
     dune exec bench/main.exe                 # the standard run (all
                                              # experiments, scaled)
     dune exec bench/main.exe -- table1       # just Table 1
     dune exec bench/main.exe -- table2 figure1 epsilon
     dune exec bench/main.exe -- full         # larger budgets
     dune exec bench/main.exe -- micro        # Bechamel micro benches

   Budgets are scaled so the default run finishes in minutes on a
   laptop; EXPERIMENTS.md records settings and committed outputs. The
   paper used a cluster, 2500 s BSAT timeouts and 20 h totals — the
   `full` mode raises budgets in that direction. *)

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

type budget = {
  unigen_samples : int;
  uniwit_samples : int;
  per_call_timeout : float;
  overall_timeout : float;
  count_iterations : int option;
  figure_samples : int;
}

let quick_budget =
  {
    unigen_samples = 40;
    uniwit_samples = 4;
    per_call_timeout = 15.0;
    overall_timeout = 90.0;
    count_iterations = Some 9;
    figure_samples = 60_000;
  }

let full_budget =
  {
    unigen_samples = 200;
    uniwit_samples = 10;
    per_call_timeout = 120.0;
    overall_timeout = 900.0;
    count_iterations = None (* faithful 137 iterations *);
    figure_samples = 400_000;
  }

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2 *)

let run_table ~budget ~name instances =
  section
    (Printf.sprintf
       "%s: runtime comparison UniGen vs UniWit (eps=6, %d/%d samples, %gs/%gs timeouts)"
       name budget.unigen_samples budget.uniwit_samples budget.per_call_timeout
       budget.overall_timeout);
  let rows =
    List.map
      (fun (i : Workload.Suite.instance) ->
        Printf.printf "  running %-16s ...%!" i.Workload.Suite.name;
        let t0 = Unix.gettimeofday () in
        (* the large-Tseitin instances carry the paper's scalability
           headline; give them the budget headroom the paper's 20 h
           runs stand for *)
        let scale = if i.Workload.Suite.domain = "large-tseitin" then 4.0 else 1.0 in
        let row =
          Workload.Experiment.run_row ~epsilon:6.0
            ~unigen_samples:budget.unigen_samples
            ~uniwit_samples:budget.uniwit_samples
            ~per_call_timeout:(budget.per_call_timeout *. scale)
            ~overall_timeout:(budget.overall_timeout *. scale)
            ?count_iterations:budget.count_iterations
            ~rng:(Rng.create (Hashtbl.hash i.Workload.Suite.name))
            i
        in
        Printf.printf " done (%.1fs)\n%!" (Unix.gettimeofday () -. t0);
        row)
      instances
  in
  print_newline ();
  Workload.Experiment.pp_table Format.std_formatter rows;
  Format.print_flush ();
  (* the paper's headline ratio *)
  let ratios =
    List.filter_map
      (fun (r : Workload.Experiment.row) ->
        if
          (not r.Workload.Experiment.unigen_failed)
          && (not r.Workload.Experiment.uniwit_failed)
          (* sub-0.5ms UniGen rows (easy case) would make the ratio
             meaningless *)
          && r.Workload.Experiment.unigen_avg_seconds >= 5e-4
        then
          Some
            (r.Workload.Experiment.uniwit_avg_seconds
            /. r.Workload.Experiment.unigen_avg_seconds)
        else None)
      rows
  in
  (match ratios with
  | [] -> ()
  | _ ->
      Printf.printf
        "\nUniWit/UniGen per-witness time ratio: min %.1fx, median %.1fx, max %.1fx\n"
        (List.fold_left min infinity ratios)
        (List.nth (List.sort compare ratios) (List.length ratios / 2))
        (List.fold_left max 0.0 ratios));
  let uw_timeouts =
    List.length (List.filter (fun (r : Workload.Experiment.row) -> r.Workload.Experiment.uniwit_failed) rows)
  in
  if uw_timeouts > 0 then
    Printf.printf
      "UniWit produced no witness within budget on %d/%d instances (the paper's '-')\n"
      uw_timeouts (List.length rows)

(* ------------------------------------------------------------------ *)
(* Figure 1 *)

let run_figure1 ~budget () =
  section
    (Printf.sprintf "Figure 1: uniformity, UniGen vs ideal sampler US (%d samples)"
       budget.figure_samples);
  let f = Lazy.force Workload.Suite.uniformity_case.Workload.Suite.formula in
  let r =
    Workload.Experiment.run_uniformity ~epsilon:6.0
      ~samples:budget.figure_samples
      ?count_iterations:budget.count_iterations
      ~rng:(Rng.create 110) f
  in
  Workload.Experiment.pp_uniformity Format.std_formatter r;
  Format.print_flush ();
  (* coarse ASCII rendering of the two count distributions *)
  let render name series =
    Printf.printf "\n%s count distribution (bucketed):\n" name;
    let bucket = 8 in
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (c, w) ->
        let b = c / bucket * bucket in
        Hashtbl.replace tbl b (w + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
      series;
    Hashtbl.fold (fun b w acc -> (b, w) :: acc) tbl []
    |> List.sort compare
    |> List.iter (fun (b, w) ->
           Printf.printf "  %4d-%-4d %5d %s\n" b (b + bucket - 1) w
             (String.make (min 60 (w / 4)) '#'))
  in
  render "UniGen" r.Workload.Experiment.unigen_series;
  render "US" r.Workload.Experiment.us_series

(* ------------------------------------------------------------------ *)
(* The epsilon knob (Section 4, "Trading scalability with uniformity") *)

let run_epsilon ~budget () =
  section "Epsilon sweep: tolerance vs time vs distribution distance";
  let f = Lazy.force Workload.Suite.uniformity_case.Workload.Suite.formula in
  let us = Sampling.Us.create f in
  let rf = Sampling.Us.size us in
  let sampling = Cnf.Formula.sampling_vars f in
  Printf.printf "%8s %8s %8s %12s %12s %10s %10s %8s\n" "epsilon" "kappa" "pivot"
    "s/sample" "succ prob" "TV dist" "chi2 p" "hi-lo";
  List.iter
    (fun epsilon ->
      let rng = Rng.create 55 in
      match
        Sampling.Unigen.prepare ?count_iterations:budget.count_iterations ~rng
          ~epsilon f
      with
      | Error _ -> Printf.printf "%8.2f preparation failed\n" epsilon
      | Ok p ->
          let samples = 4000 in
          let keys = ref [] in
          let drawn = ref 0 in
          while !drawn < samples do
            match Sampling.Unigen.sample ~rng p with
            | Ok m ->
                incr drawn;
                keys := Cnf.Model.key (Cnf.Model.restrict m sampling) :: !keys
            | Error _ -> ()
          done;
          let h = Sampling.Stats.histogram_of_keys !keys in
          let tv =
            Sampling.Stats.total_variation_from_uniform ~num_outcomes:rf
              ~num_samples:samples h
          in
          let pvalue =
            Sampling.Stats.uniformity_pvalue ~num_outcomes:rf ~num_samples:samples h
          in
          let st = Sampling.Unigen.stats p in
          Printf.printf "%8.2f %8.3f %8d %12.5f %12.2f %10.4f %10.4f %8.1f\n%!"
            epsilon
            (Sampling.Unigen.kappa p) (Sampling.Unigen.pivot p)
            (Sampling.Sampler.average_seconds_per_sample st)
            (Sampling.Sampler.success_probability st)
            tv pvalue
            (Sampling.Unigen.hi_thresh p -. Sampling.Unigen.lo_thresh p))
    [ 1.9; 3.0; 6.0; 12.0; 20.0 ];
  Printf.printf
    "(at %d samples over %d witnesses the TV statistic is noise-dominated;\n\
    \ the chi2 p-value is the calibrated test)\n"
    4000 rf;
  print_endline
    "\nsmaller epsilon -> larger pivot/hiThresh -> more BSAT work per sample\n\
     but tighter uniformity (the paper's scalability/uniformity knob)"

(* ------------------------------------------------------------------ *)
(* Ablation X2: hashing over S vs over the full support X *)

let run_ablation_support ~budget () =
  section "Ablation: hash over sampling set S vs full support X (UniGen core insight)";
  let instance =
    match Workload.Suite.by_name "s_lfsr16_3" with
    | Some i -> i
    | None -> failwith "instance missing"
  in
  let f = Lazy.force instance.Workload.Suite.formula in
  let full_support = List.init f.Cnf.Formula.num_vars (fun i -> i + 1) in
  let variants =
    [ ("hash over S", f); ("hash over X", Cnf.Formula.with_sampling_set f full_support) ]
  in
  Printf.printf "%14s %8s %12s %12s %10s\n" "variant" "|set|" "s/sample"
    "avg xor len" "succ prob";
  List.iter
    (fun (label, g) ->
      let rng = Rng.create 77 in
      match
        Sampling.Unigen.prepare ?count_iterations:budget.count_iterations ~rng
          ~epsilon:6.0 g
      with
      | Error _ -> Printf.printf "%14s preparation failed\n" label
      | Ok p ->
          for _ = 1 to 30 do
            let deadline = Unix.gettimeofday () +. budget.per_call_timeout in
            ignore (Sampling.Unigen.sample ~deadline ~rng p)
          done;
          let st = Sampling.Unigen.stats p in
          Printf.printf "%14s %8d %12.5f %12.1f %10.2f\n%!" label
            (Array.length (Cnf.Formula.sampling_vars g))
            (Sampling.Sampler.average_seconds_per_sample st)
            (Sampling.Sampler.average_xor_length st)
            (Sampling.Sampler.success_probability st))
    variants

(* ------------------------------------------------------------------ *)
(* Ablation X3: sparse XOR rows *)

let run_ablation_sparse ~budget () =
  section "Ablation: sparse XOR rows (density < 0.5 voids the 3-wise independence)";
  let f = Lazy.force Workload.Suite.uniformity_case.Workload.Suite.formula in
  let us = Sampling.Us.create f in
  let rf = Sampling.Us.size us in
  let sampling = Cnf.Formula.sampling_vars f in
  Printf.printf "%10s %12s %12s %10s %12s\n" "density" "s/sample" "avg xor len"
    "TV dist" "succ prob";
  List.iter
    (fun density ->
      let rng = Rng.create 33 in
      match
        Sampling.Unigen.prepare ?count_iterations:budget.count_iterations
          ~hash_density:density ~rng ~epsilon:6.0 f
      with
      | Error _ -> Printf.printf "%10.2f preparation failed\n" density
      | Ok p ->
          let samples = 4000 in
          let keys = ref [] and drawn = ref 0 and attempts = ref 0 in
          while !drawn < samples && !attempts < samples * 20 do
            incr attempts;
            match Sampling.Unigen.sample ~rng p with
            | Ok m ->
                incr drawn;
                keys := Cnf.Model.key (Cnf.Model.restrict m sampling) :: !keys
            | Error _ -> ()
          done;
          let h = Sampling.Stats.histogram_of_keys !keys in
          let tv =
            Sampling.Stats.total_variation_from_uniform ~num_outcomes:rf
              ~num_samples:!drawn h
          in
          let st = Sampling.Unigen.stats p in
          Printf.printf "%10.2f %12.5f %12.1f %10.4f %12.2f\n%!" density
            (Sampling.Sampler.average_seconds_per_sample st)
            (Sampling.Sampler.average_xor_length st)
            tv
            (Sampling.Sampler.success_probability st))
    [ 0.5; 0.25; 0.1 ]

(* ------------------------------------------------------------------ *)
(* Ablation X4: blocking clauses over S vs over X *)

let run_ablation_blocking () =
  section "Ablation: BSAT blocking clauses restricted to S vs full X";
  let instance =
    match Workload.Suite.by_name "case_m2" with
    | Some i -> i
    | None -> failwith "instance missing"
  in
  let f = Lazy.force instance.Workload.Suite.formula in
  let s_vars = Cnf.Formula.sampling_vars f in
  let x_vars = Array.init f.Cnf.Formula.num_vars (fun i -> i + 1) in
  let time_enumeration label blocking =
    let t0 = Unix.gettimeofday () in
    let out = Sat.Bsat.enumerate ~blocking_vars:blocking ~limit:1000 f in
    Printf.printf "%22s: %4d witnesses in %.3fs (%d conflicts)\n%!" label
      (List.length out.Sat.Bsat.models)
      (Unix.gettimeofday () -. t0)
      out.Sat.Bsat.conflicts
  in
  time_enumeration "blocking over S" s_vars;
  time_enumeration "blocking over X" x_vars;
  print_endline
    "(over X the enumeration distinguishes assignments that differ only\n\
     in dependent variables, and each blocking clause is |X| long)"

(* ------------------------------------------------------------------ *)
(* Ablation: leapfrogging inside ApproxMC *)

let run_ablation_leapfrog () =
  section "Ablation: ApproxMC leapfrogging (disabled in the paper's experiments)";
  let instance =
    match Workload.Suite.by_name "case_m1" with
    | Some i -> i
    | None -> failwith "instance missing"
  in
  let f = Lazy.force instance.Workload.Suite.formula in
  List.iter
    (fun (label, leapfrog) ->
      let rng = Rng.create 13 in
      let t0 = Unix.gettimeofday () in
      match
        Counting.Approxmc.count ~leapfrog ~iterations:17 ~rng ~epsilon:0.8
          ~delta:0.8 f
      with
      | Ok r ->
          Printf.printf "%18s: estimate %.0f in %.2fs (%d ok, %d failed)\n%!" label
            r.Counting.Approxmc.estimate
            (Unix.gettimeofday () -. t0)
            r.Counting.Approxmc.core_iterations r.Counting.Approxmc.failed_iterations
      | Error _ -> Printf.printf "%18s: failed\n" label)
    [ ("no leapfrog", false); ("leapfrog", true) ]

(* ------------------------------------------------------------------ *)
(* Ablation: amortised multi-sample mode vs one-shot *)

let run_ablation_amortise ~budget () =
  section "Ablation: amortised preparation (lines 1-11 once) vs one-shot UniGen";
  let instance =
    match Workload.Suite.by_name "case_m2" with
    | Some i -> i
    | None -> failwith "instance missing"
  in
  let f = Lazy.force instance.Workload.Suite.formula in
  let n = 15 in
  (* amortised: prepare once *)
  let rng = Rng.create 21 in
  let t0 = Unix.gettimeofday () in
  (match
     Sampling.Unigen.prepare ?count_iterations:budget.count_iterations ~rng
       ~epsilon:6.0 f
   with
  | Error _ -> print_endline "prepare failed"
  | Ok p ->
      for _ = 1 to n do
        ignore (Sampling.Unigen.sample ~rng p)
      done;
      Printf.printf "%18s: %d samples in %.2fs total\n%!" "amortised" n
        (Unix.gettimeofday () -. t0));
  (* one-shot: re-run preparation for every sample *)
  let rng = Rng.create 22 in
  let t0 = Unix.gettimeofday () in
  let produced = ref 0 in
  for _ = 1 to n do
    match
      Sampling.Unigen.prepare ?count_iterations:budget.count_iterations ~rng
        ~epsilon:6.0 f
    with
    | Ok p -> ( match Sampling.Unigen.sample ~rng p with Ok _ -> incr produced | _ -> ())
    | Error _ -> ()
  done;
  Printf.printf "%18s: %d samples in %.2fs total\n%!" "one-shot" !produced
    (Unix.gettimeofday () -. t0);
  print_endline
    "(unlike UniWit's leapfrogging, UniGen's amortisation keeps Theorem 1 intact)"

(* ------------------------------------------------------------------ *)
(* Ablation: sampling-safe preprocessing in front of UniGen *)

let run_ablation_preprocess ~budget () =
  section "Ablation: sampling-safe preprocessing (Simplify) in front of UniGen";
  Printf.printf "%14s %10s %10s %12s %12s\n" "instance" "clauses" "simplified"
    "raw s/samp" "simp s/samp";
  List.iter
    (fun name ->
      match Workload.Suite.by_name name with
      | None -> ()
      | Some instance ->
          let f = Lazy.force instance.Workload.Suite.formula in
          (match Preprocess.Simplify.run f with
          | Error `Unsat -> Printf.printf "%14s unsat?!\n" name
          | Ok r ->
              let time_sampling g seed =
                let rng = Rng.create seed in
                match
                  Sampling.Unigen.prepare
                    ?count_iterations:budget.count_iterations ~rng ~epsilon:6.0 g
                with
                | Error _ -> Float.nan
                | Ok p ->
                    for _ = 1 to 20 do
                      let deadline =
                        Unix.gettimeofday () +. budget.per_call_timeout
                      in
                      ignore (Sampling.Unigen.sample ~deadline ~rng p)
                    done;
                    Sampling.Sampler.average_seconds_per_sample
                      (Sampling.Unigen.stats p)
              in
              let raw_time = time_sampling f 41 in
              let simp_time = time_sampling r.Preprocess.Simplify.simplified 41 in
              Printf.printf "%14s %10d %10d %12.5f %12.5f\n%!" name
                r.Preprocess.Simplify.clauses_before
                r.Preprocess.Simplify.clauses_after raw_time simp_time))
    [ "case_m1"; "s_fsm12_3"; "sk_login"; "ll_reverse" ];
  print_endline
    "(BVE only touches variables outside the sampling set, so the\n\
     projected witness distribution UniGen samples from is unchanged)"

(* ------------------------------------------------------------------ *)
(* Related-work shoot-out: uniformity and cost of every sampler *)

let run_baselines ~budget () =
  section "Baselines: uniformity and per-witness cost of every sampler";
  let f = Lazy.force Workload.Suite.uniformity_case.Workload.Suite.formula in
  let us = Sampling.Us.create f in
  let rf = Sampling.Us.size us in
  let sampling = Cnf.Formula.sampling_vars f in
  let key_of m = Cnf.Model.key (Cnf.Model.restrict m sampling) in
  let samples = 3000 in
  Printf.printf "|R_F| = %d, %d samples per sampler\n\n" rf samples;
  Printf.printf "%14s %12s %10s %10s %12s %10s\n" "sampler" "s/sample" "TV dist"
    "chi2 p" "succ prob" "coverage";
  let report name stats keys attempted =
    let drawn = List.length keys in
    let h = Sampling.Stats.histogram_of_keys keys in
    let tv =
      Sampling.Stats.total_variation_from_uniform ~num_outcomes:rf
        ~num_samples:drawn h
    in
    let p = Sampling.Stats.uniformity_pvalue ~num_outcomes:rf ~num_samples:drawn h in
    Printf.printf "%14s %12.5f %10.4f %10.4f %12.2f %9.1f%%\n%!" name
      (Sampling.Sampler.average_seconds_per_sample stats)
      tv p
      (float_of_int drawn /. float_of_int attempted)
      (100.0 *. float_of_int (Hashtbl.length h) /. float_of_int rf)
  in
  let collect name next =
    let stats = Sampling.Sampler.fresh_stats () in
    let keys = ref [] and drawn = ref 0 and attempts = ref 0 in
    while !drawn < samples && !attempts < samples * 10 do
      incr attempts;
      match next stats with
      | Some m ->
          incr drawn;
          keys := key_of m :: !keys
      | None -> ()
    done;
    report name stats !keys !attempts
  in
  (* US *)
  let rng = Rng.create 61 in
  collect "US (ideal)" (fun stats ->
      stats.Sampling.Sampler.samples_requested <-
        stats.Sampling.Sampler.samples_requested + 1;
      let t0 = Unix.gettimeofday () in
      let m = Sampling.Us.sample ~rng us in
      stats.Sampling.Sampler.wall_seconds <-
        stats.Sampling.Sampler.wall_seconds +. (Unix.gettimeofday () -. t0);
      stats.Sampling.Sampler.samples_produced <-
        stats.Sampling.Sampler.samples_produced + 1;
      Some m);
  (* UniGen *)
  let rng = Rng.create 62 in
  (match
     Sampling.Unigen.prepare ?count_iterations:budget.count_iterations ~rng
       ~epsilon:6.0 f
   with
  | Error _ -> print_endline "UniGen preparation failed"
  | Ok p ->
      let keys = ref [] and drawn = ref 0 and attempts = ref 0 in
      while !drawn < samples && !attempts < samples * 10 do
        incr attempts;
        match Sampling.Unigen.sample ~rng p with
        | Ok m ->
            incr drawn;
            keys := key_of m :: !keys
        | Error _ -> ()
      done;
      report "UniGen" (Sampling.Unigen.stats p) !keys !attempts);
  (* UniWit (few samples: it re-searches hash sizes every draw) *)
  let rng = Rng.create 63 in
  let uniwit_samples = min samples 300 in
  let stats = Sampling.Sampler.fresh_stats () in
  let keys = ref [] in
  for _ = 1 to uniwit_samples do
    match Sampling.Uniwit.sample ~stats ~rng f with
    | Ok m -> keys := key_of m :: !keys
    | Error _ -> ()
  done;
  report
    (Printf.sprintf "UniWit(%d)" uniwit_samples)
    stats !keys uniwit_samples;
  (* XORSample' with s tuned from the true count *)
  let rng = Rng.create 64 in
  let s_guess =
    int_of_float (Float.round (Float.log (float_of_int rf) /. Float.log 2.0)) - 3
  in
  collect
    (Printf.sprintf "XORSample'(%d)" s_guess)
    (fun stats ->
      match Sampling.Xorsample.sample ~stats ~rng ~s:s_guess f with
      | Ok m -> Some m
      | Error _ -> None);
  (* MCMC *)
  let rng = Rng.create 65 in
  collect "MCMC" (fun stats ->
      match Sampling.Mcmc.sample ~steps:4000 ~restarts:3 ~stats ~rng f with
      | Ok m -> Some m
      | Error _ -> None);
  print_endline
    "\ncoverage = fraction of distinct witnesses seen; low chi2 p-values\n\
     reject uniformity (the paper's related-work claim: MCMC and\n\
     heuristic samplers are fast but skewed; UniGen matches US)"

(* ------------------------------------------------------------------ *)
(* Parallel sampling engine: throughput and speedup per --jobs *)

let run_parallel ~budget () =
  section
    (Printf.sprintf
       "Parallel sampling: per-jobs throughput and speedup (medium Tseitin \
        suite, %d samples/batch)"
       budget.unigen_samples);
  Printf.printf
    "host reports %d usable core(s); speedup is bounded by physical \
     parallelism\n\n"
    (Domain.recommended_domain_count ());
  let jobs_levels = [ 1; 2; 4 ] in
  Printf.printf "%14s %6s %12s %12s %10s %14s\n" "instance" "jobs" "batch s"
    "samples/s" "speedup" "bit-identical";
  List.iter
    (fun name ->
      match Workload.Suite.by_name name with
      | None -> ()
      | Some instance ->
          let f = Lazy.force instance.Workload.Suite.formula in
          let rng = Rng.create 97 in
          (match
             Sampling.Unigen.prepare ?count_iterations:budget.count_iterations
               ~rng ~epsilon:6.0 f
           with
          | Error _ -> Printf.printf "%14s preparation failed\n" name
          | Ok p ->
              let n = budget.unigen_samples in
              let reference = ref [||] in
              let serial_time = ref Float.nan in
              List.iter
                (fun jobs ->
                  let t0 = Unix.gettimeofday () in
                  let out =
                    Sampling.Unigen.sample_batch ~max_attempts:20 ~jobs
                      ~seed:4242 p n
                  in
                  let dt = Unix.gettimeofday () -. t0 in
                  let keys =
                    Array.map
                      (function
                        | Ok m -> Cnf.Model.key m
                        | Error _ -> "<fail>")
                      out
                  in
                  if jobs = 1 then begin
                    reference := keys;
                    serial_time := dt
                  end;
                  let produced =
                    Array.fold_left
                      (fun acc o -> match o with Ok _ -> acc + 1 | Error _ -> acc)
                      0 out
                  in
                  Printf.printf "%14s %6d %12.3f %12.1f %10.2f %14s\n%!" name
                    jobs dt
                    (float_of_int produced /. dt)
                    (!serial_time /. dt)
                    (if keys = !reference then "yes" else "NO"))
                jobs_levels))
    [ "case_m1"; "case_m2"; "s_lfsr16_3"; "s_fsm12_3" ];
  print_endline
    "\nbit-identical = the --jobs N outcome array equals the --jobs 1 array\n\
     element for element (sample i always consumes stream (seed, i));\n\
     leaf sampling re-runs lines 12-22 per sample, so Theorem 1 is\n\
     preserved at every jobs level"

(* ------------------------------------------------------------------ *)
(* Incremental solver sessions: fresh vs session, differential + perf *)

let run_incremental ~budget () =
  section
    "Incremental sessions: fresh vs session solver path (differential check, \
     writes BENCH_incremental.json)";
  let instances = [ "case_s1"; "case_s2"; "case_m1"; "case_m2" ] in
  let json_rows = ref [] in
  let all_equal = ref true in
  Printf.printf "%10s %8s | %9s %10s | %9s %10s %8s | %6s\n" "instance" "phase"
    "fresh s" "conflicts" "sess s" "conflicts" "reuse" "equal";
  let emit name phase (fw, fc, fr, fd) (sw, sc, sr, sd) =
    let equal = fd = sd in
    if not equal then all_equal := false;
    Printf.printf "%10s %8s | %9.3f %10d | %9.3f %10d %8d | %6s\n%!" name phase
      fw fc sw sc sr
      (if equal then "yes" else "NO");
    ignore fr;
    json_rows :=
      Printf.sprintf
        "    { \"instance\": %S, \"phase\": %S,\n\
        \      \"fresh\": { \"wall_s\": %.6f, \"conflicts\": %d },\n\
        \      \"session\": { \"wall_s\": %.6f, \"conflicts\": %d, \
         \"reuse_hits\": %d },\n\
        \      \"equal\": %b }" name phase fw fc sw sc sr equal
      :: !json_rows
  in
  List.iter
    (fun name ->
      match Workload.Suite.by_name name with
      | None -> ()
      | Some instance ->
          let f = Lazy.force instance.Workload.Suite.formula in
          (* ApproxMC count: one session per core iteration vs a fresh
             solver per hash size *)
          let run_count incremental =
            let rng = Rng.create (Hashtbl.hash name) in
            let t0 = Unix.gettimeofday () in
            match
              Counting.Approxmc.count ~incremental
                ?iterations:budget.count_iterations ~rng ~epsilon:0.8
                ~delta:0.2 f
            with
            | Ok r ->
                ( Unix.gettimeofday () -. t0,
                  r.Counting.Approxmc.solver_stats.Sat.Solver.conflicts,
                  r.Counting.Approxmc.reuse_hits,
                  Printf.sprintf "%.0f" r.Counting.Approxmc.estimate )
            | Error _ -> (Unix.gettimeofday () -. t0, 0, 0, "<fail>")
          in
          emit name "count" (run_count false) (run_count true);
          (* UniGen sampling: per-worker session with the XOR layer
             swapped per draw vs a fresh solver per draw *)
          let run_sample incremental =
            let rng = Rng.create 7 in
            match
              Sampling.Unigen.prepare ~incremental
                ?count_iterations:budget.count_iterations ~rng ~epsilon:6.0 f
            with
            | Error _ -> (0.0, 0, 0, "<prepare fail>")
            | Ok p ->
                let t0 = Unix.gettimeofday () in
                let out =
                  Sampling.Unigen.sample_batch ~max_attempts:20 ~seed:4242 p
                    budget.unigen_samples
                in
                let dt = Unix.gettimeofday () -. t0 in
                let digest =
                  Array.to_list out
                  |> List.map (function
                       | Ok m -> Cnf.Model.key m
                       | Error _ -> "<fail>")
                  |> String.concat ";" |> Digest.string |> Digest.to_hex
                in
                let st = Sampling.Unigen.stats p in
                ( dt,
                  st.Sampling.Sampler.conflicts,
                  st.Sampling.Sampler.reuse_hits,
                  digest )
          in
          emit name "sample" (run_sample false) (run_sample true))
    instances;
  (* In-search Gaussian elimination vs the parity 2-watch reference:
     same workload, both on the session path, differing only in the
     XOR engine. Dense hash layers are where the matrix pays off:
     fewer conflicts and fewer (but stronger) XOR propagations. *)
  section "XOR engine: in-search Gauss vs static RREF + 2-watch";
  Printf.printf "%10s %8s | %9s %10s %9s | %9s %10s %9s | %6s\n" "instance"
    "phase" "2watch s" "conflicts" "xorprops" "gauss s" "conflicts" "xorprops"
    "equal";
  let emit_engine name phase (ww, wc, wx, wd) (gw, gc, gx, gd) =
    let equal = wd = gd in
    if not equal then all_equal := false;
    Printf.printf "%10s %8s | %9.3f %10d %9d | %9.3f %10d %9d | %6s\n%!" name
      phase ww wc wx gw gc gx
      (if equal then "yes" else "NO");
    json_rows :=
      Printf.sprintf
        "    { \"instance\": %S, \"phase\": %S,\n\
        \      \"twowatch\": { \"wall_s\": %.6f, \"conflicts\": %d, \
         \"xor_propagations\": %d },\n\
        \      \"gauss\": { \"wall_s\": %.6f, \"conflicts\": %d, \
         \"xor_propagations\": %d },\n\
        \      \"equal\": %b }" name phase ww wc wx gw gc gx equal
      :: !json_rows
  in
  List.iter
    (fun name ->
      match Workload.Suite.by_name name with
      | None -> ()
      | Some instance ->
          let f = Lazy.force instance.Workload.Suite.formula in
          let run_count gauss =
            let rng = Rng.create (Hashtbl.hash name) in
            let t0 = Unix.gettimeofday () in
            match
              Counting.Approxmc.count ~gauss ?iterations:budget.count_iterations
                ~rng ~epsilon:0.8 ~delta:0.2 f
            with
            | Ok r ->
                let st = r.Counting.Approxmc.solver_stats in
                ( Unix.gettimeofday () -. t0,
                  st.Sat.Solver.conflicts,
                  st.Sat.Solver.xor_propagations,
                  Printf.sprintf "%.0f" r.Counting.Approxmc.estimate )
            | Error _ -> (Unix.gettimeofday () -. t0, 0, 0, "<fail>")
          in
          emit_engine name "count" (run_count false) (run_count true);
          let run_sample gauss =
            let rng = Rng.create 7 in
            match
              Sampling.Unigen.prepare ~gauss
                ?count_iterations:budget.count_iterations ~rng ~epsilon:6.0 f
            with
            | Error _ -> (0.0, 0, 0, "<prepare fail>")
            | Ok p ->
                let t0 = Unix.gettimeofday () in
                let out =
                  Sampling.Unigen.sample_batch ~max_attempts:20 ~seed:4242 p
                    budget.unigen_samples
                in
                let dt = Unix.gettimeofday () -. t0 in
                let digest =
                  Array.to_list out
                  |> List.map (function
                       | Ok m -> Cnf.Model.key m
                       | Error _ -> "<fail>")
                  |> String.concat ";" |> Digest.string |> Digest.to_hex
                in
                let st = Sampling.Unigen.stats p in
                ( dt,
                  st.Sampling.Sampler.conflicts,
                  st.Sampling.Sampler.xor_propagations,
                  digest )
          in
          emit_engine name "sample" (run_sample false) (run_sample true))
    instances;
  let oc = open_out "BENCH_incremental.json" in
  Printf.fprintf oc
    "{\n  \"host\": %s,\n  \"benchmarks\": [\n%s\n  ],\n  \"all_equal\": %b\n}\n"
    (Obs.Report.json_of_fields (Obs.Report.host_fields ()))
    (String.concat ",\n" (List.rev !json_rows))
    !all_equal;
  close_out oc;
  Printf.printf
    "\nwrote BENCH_incremental.json (equal = fresh/session paths and \
     gauss/2-watch\nengines returned bit-identical estimates/witness \
     streams)\n";
  if not !all_equal then begin
    prerr_endline
      "FAILURE: a differential pair (fresh vs session, or gauss vs 2-watch) \
       diverged";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Observability layer: instrumented ApproxMC+UniGen run. Asserts that
   the sampled witness stream is bit-identical with tracing/metrics on
   vs off (instrumentation must be behaviourally inert) and writes
   BENCH_obs.json with the per-phase wall-time breakdown. *)

let run_obs ~budget () =
  section
    "Observability: instrumented ApproxMC+UniGen run (differential check, \
     writes BENCH_obs.json)";
  let instance =
    match Workload.Suite.by_name "case_m1" with
    | Some i -> i
    | None -> failwith "instance missing"
  in
  let f = Lazy.force instance.Workload.Suite.formula in
  let samples = min budget.unigen_samples 40 in
  (* One full workload: ApproxMC count followed by a parallel UniGen
     batch (jobs=2 so worker-domain metric shards and their merge at
     pool join are exercised even on a 1-core host). Returns the
     wall time, the count estimate and the witness-stream digest. *)
  let workload () =
    let t0 = Unix.gettimeofday () in
    let rng = Rng.create 11 in
    let estimate =
      match
        Counting.Approxmc.count ?iterations:budget.count_iterations ~rng
          ~epsilon:0.8 ~delta:0.8 f
      with
      | Ok r -> r.Counting.Approxmc.estimate
      | Error _ -> Float.nan
    in
    let digest =
      let rng = Rng.create 12 in
      match
        Sampling.Unigen.prepare ?count_iterations:budget.count_iterations ~rng
          ~epsilon:6.0 f
      with
      | Error _ -> "<prepare fail>"
      | Ok p ->
          Sampling.Unigen.sample_batch ~max_attempts:20 ~jobs:2 ~seed:4242 p
            samples
          |> Array.to_list
          |> List.map (function
               | Ok m -> Cnf.Model.key m
               | Error _ -> "<fail>")
          |> String.concat ";" |> Digest.string |> Digest.to_hex
    in
    (Unix.gettimeofday () -. t0, estimate, digest)
  in
  (* reference: observability fully off *)
  let off_s, off_estimate, off_digest = workload () in
  Printf.printf "  uninstrumented: %.2fs (estimate %.0f)\n%!" off_s off_estimate;
  (* instrumented: the full telemetry stack on — metrics, trace AND the
     structured log, so the bit-identity claim covers every layer the
     service daemon enables in production *)
  let trace_file = "BENCH_obs_trace.json" in
  let log_file = "BENCH_obs_log.jsonl" in
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  Obs.Trace.enable_file trace_file;
  Obs.Log.enable_file log_file;
  Obs.Log.event "bench.obs.start"
    [ ("instance", Obs.Report.String instance.Workload.Suite.name) ];
  let on_s, on_estimate, on_digest = workload () in
  Obs.Log.event "bench.obs.finish"
    Obs.Report.
      [ ("wall_s", Float on_s); ("witness_digest", String on_digest) ];
  Obs.Log.close ();
  Obs.Trace.close ();
  Obs.Metrics.disable ();
  let snapshot = Obs.Metrics.snapshot () in
  Printf.printf "  instrumented:   %.2fs (estimate %.0f, trace in %s)\n%!" on_s
    on_estimate trace_file;
  let equal = off_digest = on_digest && off_estimate = on_estimate in
  Printf.printf "  bit-identical witnesses on/off: %s\n%!"
    (if equal then "yes" else "NO");
  (* per-phase breakdown on stdout *)
  let phases = Obs.Report.phase_fields snapshot in
  Printf.printf "\n  %-28s %12s\n" "phase" "wall s";
  List.iter
    (fun (name, v) ->
      match v with
      | Obs.Report.Float s -> Printf.printf "  %-28s %12.4f\n" name s
      | _ -> ())
    phases;
  (* roll the measured phase times through a rolling window, so the
     window algebra is exercised on real data and its percentiles land
     in the report like the daemon's `metrics` op would serve them *)
  let lat_window = Obs.Window.create () in
  let wnow = Unix.gettimeofday () in
  Obs.Window.observe lat_window ~now:wnow on_s;
  List.iter
    (fun (_, v) ->
      match v with
      | Obs.Report.Float s when s > 0.0 ->
          Obs.Window.observe lat_window ~now:wnow s
      | _ -> ())
    phases;
  let window_hist = Obs.Window.snapshot lat_window ~now:wnow in
  (* count the structured log lines the instrumented leg produced *)
  let log_lines =
    let ic = open_in log_file in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  in
  (* overhead microbench: every telemetry site must stay ~one atomic
     load when its layer is disabled (trace/metrics/log are all off at
     this point), and the enabled window/log paths are bounded-cost *)
  let ns_per_op ?(n = 200_000) f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9
  in
  let disabled_span_ns =
    ns_per_op (fun () -> Obs.Trace.span "bench.noop" (fun () -> ()))
  in
  let disabled_log_ns =
    ns_per_op (fun () ->
        if Obs.Log.is_enabled () then Obs.Log.event "bench.noop" [])
  in
  let window_observe_ns =
    let w = Obs.Window.create () in
    ns_per_op (fun () -> Obs.Window.observe w ~now:wnow 0.001)
  in
  let log_event_ns =
    let path = Filename.temp_file "bench_obs" ".jsonl" in
    Obs.Log.enable_file path;
    let v =
      ns_per_op ~n:20_000 (fun () ->
          Obs.Log.event "bench.overhead" [ ("i", Obs.Report.Int 1) ])
    in
    Obs.Log.close ();
    Sys.remove path;
    v
  in
  Printf.printf
    "\n  overhead: disabled span %.0f ns, disabled log %.0f ns, window \
     observe %.0f ns, log event %.0f ns\n%!"
    disabled_span_ns disabled_log_ns window_observe_ns log_event_ns;
  let report = Obs.Report.create () in
  Obs.Report.add_section report "workload"
    Obs.Report.
      [
        ("instance", String instance.Workload.Suite.name);
        ("samples", Int samples);
        ("jobs", Int 2);
        ("uninstrumented_wall_s", Float off_s);
        ("instrumented_wall_s", Float on_s);
        ("estimate", Float off_estimate);
        ("witness_digest", String off_digest);
        ("bit_identical", Bool equal);
        ("log_lines", Int log_lines);
      ];
  Obs.Report.add_section report "window"
    Obs.Report.
      [
        ("observations", Int (Obs.Window.count lat_window ~now:wnow));
        ("span_s", Float (Obs.Window.span_s lat_window));
        ("p50_s", Float (Obs.Metrics.Hist.quantile window_hist 0.5));
        ("p90_s", Float (Obs.Metrics.Hist.quantile window_hist 0.9));
        ("p99_s", Float (Obs.Metrics.Hist.quantile window_hist 0.99));
      ];
  Obs.Report.add_section report "overhead"
    Obs.Report.
      [
        ("disabled_span_ns", Float disabled_span_ns);
        ("disabled_log_check_ns", Float disabled_log_ns);
        ("window_observe_ns", Float window_observe_ns);
        ("log_event_ns", Float log_event_ns);
      ];
  List.iter
    (fun (title, fields) -> Obs.Report.add_section report title fields)
    (Obs.Report.metrics_sections snapshot);
  Obs.Report.write_json "BENCH_obs.json" report;
  Printf.printf
    "\nwrote BENCH_obs.json (phase times, window percentiles, overhead), %s \
     (structured log) and %s (open in chrome://tracing or \
     https://ui.perfetto.dev)\n"
    log_file trace_file;
  if not equal then begin
    prerr_endline "FAILURE: instrumentation changed the sampled witnesses";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Sampling service daemon: cold vs warm request latency against a
   live forked daemon (the warm request reuses the cached preparation,
   so the gap is the amortised ApproxMC cost), then queue wait under
   concurrent pipelined clients. Writes BENCH_service.json. *)

let with_service_daemon ~scheduler f =
  let dir = Filename.temp_file "unigen_bench_service" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket_path = Filename.concat dir "bench.sock" in
  match Unix.fork () with
  | 0 ->
      (try
         Service.Server.run
           {
             (Service.Server.default_config ~socket_path) with
             Service.Server.scheduler;
           }
       with _ -> ());
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
           with Unix.Unix_error (Unix.ECHILD, _, _) -> ());
          (try Sys.remove socket_path with Sys_error _ -> ());
          try Unix.rmdir dir with Unix.Unix_error _ -> ())
      @@ fun () ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      while
        (not (Sys.file_exists socket_path)) && Unix.gettimeofday () < deadline
      do
        ignore (Unix.select [] [] [] 0.02)
      done;
      if not (Sys.file_exists socket_path) then failwith "daemon did not start";
      let result = f socket_path in
      (match Service.Client.call ~socket_path Service.Wire.Shutdown with
      | Service.Wire.Bye -> ()
      | _ -> failwith "service bench: shutdown refused");
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> failwith "service bench: daemon exited uncleanly");
      result

let queue_wait_of_response = function
  | Service.Wire.Ok_sample ok -> ok.Service.Wire.queue_wait_s
  | _ -> failwith "service bench: unexpected response"

(* [clients] connections each pipeline [per_client] requests before
   reading anything back, so the daemon's admission queue genuinely
   fills. [request_for ci r] names client [ci]'s [r]-th request.
   Returns (wall seconds, queue waits). *)
let pipelined_burst ~socket_path ~clients ~per_client request_for =
  let fds =
    List.init clients (fun _ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket_path);
        fd)
  in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun ci fd ->
      for r = 0 to per_client - 1 do
        Service.Wire.write_frame fd
          (Service.Json.to_string
             (Service.Wire.request_to_json (request_for ci r)))
      done)
    fds;
  let waits = ref [] in
  List.iter
    (fun fd ->
      for _ = 1 to per_client do
        match Service.Wire.read_frame fd with
        | Some payload ->
            waits :=
              queue_wait_of_response
                (Service.Wire.response_of_json (Service.Json.of_string payload))
              :: !waits
        | None -> failwith "service bench: daemon closed mid-burst"
      done)
    fds;
  let burst_s = Unix.gettimeofday () -. t0 in
  List.iter Unix.close fds;
  (burst_s, !waits)

let wait_stats waits =
  let n = List.length waits in
  let avg = List.fold_left ( +. ) 0.0 waits /. float_of_int (max 1 n) in
  let sorted = List.sort compare waits in
  let p90 = if n = 0 then 0.0 else List.nth sorted (min (n - 1) (n * 9 / 10)) in
  let max_w = List.fold_left Float.max 0.0 waits in
  (avg, p90, max_w)

let run_service ~budget () =
  section
    "Sampling service daemon (cold vs warm latency, scaling by worker \
     domains, writes BENCH_service.json)";
  let instance =
    match Workload.Suite.by_name "case_m1" with
    | Some i -> i
    | None -> failwith "instance missing"
  in
  let formula_text =
    Cnf.Dimacs.to_string (Lazy.force instance.Workload.Suite.formula)
  in
  let n = min budget.unigen_samples 20 in
  let clients = 4 and per_client = 5 in
  let sample_req seed =
    Service.Wire.Sample
      { Service.Wire.default_sample_req with Service.Wire.formula_text; n; seed }
  in
  let report = Obs.Report.create () in
  (* cold, then repeated warm draws with fresh draw seeds (all share
     the one cached preparation) on a single connection, plus the
     historical one-formula burst — all against the serial daemon *)
  let cold_s, warm_median_s, base_burst_s, base_waits =
    with_service_daemon ~scheduler:Service.Scheduler.default_config
    @@ fun socket_path ->
    let cold_s, warm_median_s =
      Service.Client.with_connection ~socket_path @@ fun conn ->
      let timed seed =
        let t0 = Unix.gettimeofday () in
        let resp = Service.Client.request conn (sample_req seed) in
        ignore (queue_wait_of_response resp : float);
        Unix.gettimeofday () -. t0
      in
      let cold = timed 1 in
      let warm = List.init 5 (fun i -> timed (2 + i)) in
      let sorted = List.sort compare warm in
      (cold, List.nth sorted (List.length sorted / 2))
    in
    let burst_s, waits =
      pipelined_burst ~socket_path ~clients ~per_client (fun ci r ->
          sample_req (100 + (ci * per_client) + r))
    in
    (cold_s, warm_median_s, burst_s, waits)
  in
  Printf.printf "  cold request:        %8.1f ms (prepare + %d draws)\n%!"
    (cold_s *. 1000.) n;
  Printf.printf "  warm request median: %8.1f ms (%d draws, cache hit)\n%!"
    (warm_median_s *. 1000.) n;
  Printf.printf "  amortisation factor: %8.1fx\n%!" (cold_s /. warm_median_s);
  let wait_avg, _, wait_max = wait_stats base_waits in
  Printf.printf
    "  burst: %d clients x %d requests in %.1f ms (queue wait avg %.1f ms, \
     max %.1f ms)\n%!"
    clients per_client (base_burst_s *. 1000.) (wait_avg *. 1000.)
    (wait_max *. 1000.);
  Obs.Report.add_section report "service"
    Obs.Report.
      [
        ("instance", String instance.Workload.Suite.name);
        ("samples_per_request", Int n);
        ("jobs", Int Service.Scheduler.default_config.Service.Scheduler.jobs);
        ("cold_ms", Float (cold_s *. 1000.));
        ("warm_ms_median", Float (warm_median_s *. 1000.));
        ("amortisation_factor", Float (cold_s /. warm_median_s));
        ("concurrent_clients", Int clients);
        ("requests_per_client", Int per_client);
        ("burst_wall_ms", Float (base_burst_s *. 1000.));
        ("queue_wait_ms_avg", Float (wait_avg *. 1000.));
        ("queue_wait_ms_max", Float (wait_max *. 1000.));
      ];
  (* durable-tier latency ladder: cold (ApproxMC + spill), disk-warm
     (a restarted daemon decodes and imports the spilled preparation —
     no ApproxMC), ram-warm (plain LRU hit). Witnesses must be
     bit-identical on all three rungs. *)
  section "Durable store tier (cold vs disk-warm vs ram-warm latency)";
  let spill_dir = Filename.temp_file "unigen_bench_spill" "" in
  Sys.remove spill_dir;
  Unix.mkdir spill_dir 0o700;
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter
          (fun name -> rm_rf (Filename.concat path name))
          (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  Fun.protect ~finally:(fun () -> rm_rf spill_dir) @@ fun () ->
  let spill_scheduler =
    {
      Service.Scheduler.default_config with
      Service.Scheduler.spill_dir = Some spill_dir;
    }
  in
  let timed_call socket_path seed =
    let t0 = Unix.gettimeofday () in
    match Service.Client.call ~socket_path (sample_req seed) with
    | Service.Wire.Ok_sample ok ->
        ( Unix.gettimeofday () -. t0,
          ok.Service.Wire.cache,
          ok.Service.Wire.witnesses )
    | _ -> failwith "service bench: unexpected response"
  in
  let store_cold_s, cold_witnesses =
    with_service_daemon ~scheduler:spill_scheduler @@ fun socket_path ->
    let s, src, w = timed_call socket_path 1 in
    if src <> Service.Wire.Cache_miss then
      failwith "service bench: expected a cold miss";
    (s, w)
  in
  let disk_warm_s, ram_warm_s =
    (* a second daemon generation over the same spill directory: the
       restarted-daemon path *)
    with_service_daemon ~scheduler:spill_scheduler @@ fun socket_path ->
    let s1, src1, w1 = timed_call socket_path 1 in
    if src1 <> Service.Wire.Cache_disk then
      failwith "service bench: expected a disk-warm hit";
    if w1 <> cold_witnesses then
      failwith "service bench: disk-warm witnesses drifted";
    let s2, src2, w2 = timed_call socket_path 1 in
    if src2 <> Service.Wire.Cache_ram then
      failwith "service bench: expected a ram-warm hit";
    if w2 <> cold_witnesses then
      failwith "service bench: ram-warm witnesses drifted";
    (s1, s2)
  in
  Printf.printf "  cold (prepare + spill):   %8.1f ms\n%!"
    (store_cold_s *. 1000.);
  Printf.printf "  disk-warm (restart, load): %7.1f ms\n%!"
    (disk_warm_s *. 1000.);
  Printf.printf "  ram-warm (LRU hit):       %8.1f ms\n%!"
    (ram_warm_s *. 1000.);
  Printf.printf "  restart saves:            %8.1fx\n%!"
    (store_cold_s /. disk_warm_s);
  Obs.Report.add_section report "service_durable_store"
    Obs.Report.
      [
        ("instance", String instance.Workload.Suite.name);
        ("samples_per_request", Int n);
        ("cold_ms", Float (store_cold_s *. 1000.));
        ("disk_warm_ms", Float (disk_warm_s *. 1000.));
        ("ram_warm_ms", Float (ram_warm_s *. 1000.));
        ("cold_vs_disk_warm_factor", Float (store_cold_s /. disk_warm_s));
        ("disk_vs_ram_warm_factor", Float (disk_warm_s /. ram_warm_s));
      ];
  (* scaling by worker domains: each client hammers its own formula
     (distinct fingerprints — the sharded-parallelism regime), one
     fresh daemon per jobs level. On a 1-core host the series
     degenerates to a scheduling-overhead check: jobs=1 must not
     regress, and higher jobs levels must stay within noise. *)
  section "Service scaling by worker domains (one formula per client)";
  let scaling_instances = Workload.Suite.quick in
  if List.length scaling_instances < clients then
    failwith "service bench: quick suite too small for the scaling series";
  let texts =
    Array.of_list
      (List.map
         (fun i -> Cnf.Dimacs.to_string (Lazy.force i.Workload.Suite.formula))
         scaling_instances)
  in
  let scaling_n = min n 10 in
  List.iter
    (fun jobs ->
      let scheduler =
        { Service.Scheduler.default_config with Service.Scheduler.jobs }
      in
      let burst_s, waits =
        with_service_daemon ~scheduler @@ fun socket_path ->
        pipelined_burst ~socket_path ~clients ~per_client (fun ci r ->
            Service.Wire.Sample
              {
                Service.Wire.default_sample_req with
                Service.Wire.formula_text = texts.(ci mod Array.length texts);
                n = scaling_n;
                seed = 500 + (ci * per_client) + r;
              })
      in
      let wait_avg, wait_p90, wait_max = wait_stats waits in
      Printf.printf
        "  jobs=%d: %d clients x %d requests in %8.1f ms (queue wait avg \
         %.1f ms, p90 %.1f ms, max %.1f ms)\n%!"
        jobs clients per_client (burst_s *. 1000.) (wait_avg *. 1000.)
        (wait_p90 *. 1000.) (wait_max *. 1000.);
      Obs.Report.add_section report
        (Printf.sprintf "service_scaling_jobs_%d" jobs)
        Obs.Report.
          [
            ("jobs", Int jobs);
            ("concurrent_clients", Int clients);
            ("requests_per_client", Int per_client);
            ("distinct_formulas", Int (Array.length texts));
            ("samples_per_request", Int scaling_n);
            ("burst_wall_ms", Float (burst_s *. 1000.));
            ("queue_wait_ms_avg", Float (wait_avg *. 1000.));
            ("queue_wait_ms_p90", Float (wait_p90 *. 1000.));
            ("queue_wait_ms_max", Float (wait_max *. 1000.));
          ])
    [ 1; 2; 4 ];
  Obs.Report.write_json "BENCH_service.json" report;
  Printf.printf "\nwrote BENCH_service.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro benchmarks *)

let run_micro () =
  section "Micro benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let small_f =
    Cnf.Formula.create ~num_vars:24
      (List.init 30 (fun i ->
           let v = (i mod 22) + 1 in
           Cnf.Clause.of_dimacs [ v; -(v + 1); v + 2 ]))
  in
  let vars40 = Array.init 40 (fun i -> i + 1) in
  let hash_rng = Rng.create 3 in
  let solve_once () =
    let s = Sat.Solver.create small_f in
    ignore (Sat.Solver.solve s)
  in
  let prepared =
    match
      Sampling.Unigen.prepare ~count_iterations:5 ~rng:(Rng.create 4) ~epsilon:6.0
        (Cnf.Formula.create ~num_vars:12 [])
    with
    | Ok p -> p
    | Error _ -> failwith "micro prepare failed"
  in
  let sample_rng = Rng.create 5 in
  let tests =
    [
      Test.make ~name:"rng/bits64" (Staged.stage (fun () -> Rng.bits64 hash_rng));
      Test.make ~name:"hxor/sample m=20 n=40"
        (Staged.stage (fun () -> Hashing.Hxor.sample hash_rng ~vars:vars40 ~m:20));
      Test.make ~name:"solver/solve 24v30c" (Staged.stage solve_once);
      Test.make ~name:"unigen/sample 2^12"
        (Staged.stage (fun () -> Sampling.Unigen.sample ~rng:sample_rng prepared));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"unigen" tests) in
  let results =
    List.map (fun i -> Analyze.all ols i raw) instances |> Analyze.merge ols instances
  in
  Hashtbl.iter
    (fun label tbl ->
      if label = Measure.label Toolkit.Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/run\n" name est
            | _ -> Printf.printf "  %-32s (no estimate)\n" name)
          tbl)
    results

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let budget = if List.mem "full" args then full_budget else quick_budget in
  let targets = List.filter (fun a -> a <> "full") args in
  let all =
    [ "table1"; "table2"; "figure1"; "epsilon"; "baselines"; "parallel";
      "incremental"; "ablation-support"; "ablation-sparse"; "ablation-blocking";
      "ablation-leapfrog"; "ablation-amortise"; "ablation-preprocess"; "obs";
      "service"; "micro" ]
  in
  let default = [ "table1"; "figure1"; "epsilon"; "baselines"; "parallel";
                  "incremental"; "obs"; "service"; "ablation-support";
                  "ablation-sparse"; "ablation-blocking"; "ablation-leapfrog";
                  "ablation-amortise"; "ablation-preprocess"; "micro" ]
  in
  let targets = if targets = [] then default else targets in
  List.iter
    (fun t ->
      if not (List.mem t all) then begin
        Printf.eprintf "unknown target %s (available: %s, plus 'full')\n" t
          (String.concat ", " all);
        exit 1
      end)
    targets;
  let t0 = Unix.gettimeofday () in
  List.iter
    (function
      | "table1" -> run_table ~budget ~name:"Table 1" Workload.Suite.table1
      | "table2" -> run_table ~budget ~name:"Table 2" Workload.Suite.table2
      | "figure1" -> run_figure1 ~budget ()
      | "epsilon" -> run_epsilon ~budget ()
      | "baselines" -> run_baselines ~budget ()
      | "parallel" -> run_parallel ~budget ()
      | "incremental" -> run_incremental ~budget ()
      | "obs" -> run_obs ~budget ()
      | "service" -> run_service ~budget ()
      | "ablation-support" -> run_ablation_support ~budget ()
      | "ablation-sparse" -> run_ablation_sparse ~budget ()
      | "ablation-blocking" -> run_ablation_blocking ()
      | "ablation-leapfrog" -> run_ablation_leapfrog ()
      | "ablation-amortise" -> run_ablation_amortise ~budget ()
      | "ablation-preprocess" -> run_ablation_preprocess ~budget ()
      | "micro" -> run_micro ()
      | _ -> ())
    targets;
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)

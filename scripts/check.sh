#!/bin/sh
# CI smoke check: fast typecheck, full test suite, and repo-hygiene
# guards. Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

# Guard: no build artefacts may be committed. A tracked _build/ path
# means someone ran `git add -A` with a stale .gitignore.
tracked_build=$(git ls-files | grep -E '(^|/)_build/' || true)
if [ -n "$tracked_build" ]; then
    echo "error: build artefacts are tracked by git:" >&2
    echo "$tracked_build" | sed 's/^/  /' >&2
    echo "run: git rm -r --cached _build" >&2
    exit 1
fi

echo "== dune build @check"
dune build @check

echo "== lint"
# Repo-specific rules (determinism, concurrency discipline, hot-path
# hygiene, .mli coverage, observability-name registry) from
# lib/analysis; findings are JSON on stdout, blocking ones fail the
# build. SARIF goes to a scratch file and is structurally validated so
# CI annotation never ingests a malformed document.
lint_dir=$(mktemp -d)
dune exec bin/lint.exe -- --root . --sarif "$lint_dir/lint.sarif" > /dev/null
for key in '"version": "2.1.0"' '"runs"' '"tool"' '"unigen-lint"' \
           '"rules"' '"results"' '"physicalLocation"'; do
    grep -q "$key" "$lint_dir/lint.sarif" || {
        echo "error: SARIF output missing $key" >&2
        cat "$lint_dir/lint.sarif" >&2
        exit 1
    }
done
# every emitted result must reference a rule the driver declares
for rid in $(sed -n 's/.*"ruleId": "\([a-z-]*\)".*/\1/p' "$lint_dir/lint.sarif" | sort -u); do
    [ "$rid" = "stale-allowlist" ] && continue   # engine-synthesized
    grep -q "\"id\": \"$rid\"" "$lint_dir/lint.sarif" || {
        echo "error: SARIF result references undeclared rule $rid" >&2
        exit 1
    }
done
rm -rf "$lint_dir"

echo "== dune runtest"
dune runtest

echo "== dune runtest (audit mode)"
# Second pass with the correctness-audit subsystem live: sampled
# invariant sweeps, witness re-evaluation, blocking-set and ownership
# checks. A longer sweep period keeps the pass ~2x baseline cost.
UNIGEN_AUDIT=1 UNIGEN_AUDIT_PERIOD=256 dune runtest --force

echo "== xor engine differential (gauss vs --no-gauss, audit mode)"
# The in-search Gauss engine and the static-RREF + 2-watch reference
# must emit byte-identical witness streams and equal counts, with the
# invariant sanitizer live on both engines (the gauss-* invariants
# sweep the matrix state in-search).
engine_dir=$(mktemp -d)
cat > "$engine_dir/engine.cnf" <<'EOF'
p cnf 8 4
c ind 1 2 3 4 5 0
1 2 3 0
-2 4 0
x 5 6 0
x 1 3 7 0
EOF
sample_with() {
    UNIGEN_AUDIT=1 UNIGEN_AUDIT_PERIOD=16 dune exec bin/unigen_cli.exe -- \
        sample "$engine_dir/engine.cnf" -n 8 -s 11 -j 2 "$@" \
        | grep '^v '
}
sample_with                > "$engine_dir/gauss.witness"
sample_with --no-gauss     > "$engine_dir/twowatch.witness"
cmp -s "$engine_dir/gauss.witness" "$engine_dir/twowatch.witness" || {
    echo "error: gauss and --no-gauss witness streams differ" >&2
    diff "$engine_dir/gauss.witness" "$engine_dir/twowatch.witness" >&2 || true
    exit 1
}
count_with() {
    UNIGEN_AUDIT=1 UNIGEN_AUDIT_PERIOD=16 dune exec bin/unigen_cli.exe -- \
        count "$engine_dir/engine.cnf" -s 11 "$@" | grep '^s mc '
}
[ "$(count_with)" = "$(count_with --no-gauss)" ] || {
    echo "error: gauss and --no-gauss counts differ" >&2
    exit 1
}
rm -rf "$engine_dir"

echo "== service smoke"
# End-to-end daemon check over a real socket: start `unigen serve` on a
# temp socket, issue the same request twice on the same formula, verify
# the second is served from the prepared-state cache (the daemon's
# metrics JSON must report exactly one hit and one miss), then shut
# down gracefully and confirm the metrics file was flushed on exit.
smoke_dir=$(mktemp -d)
serve_pid=
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
sock="$smoke_dir/unigen.sock"
metrics="$smoke_dir/metrics.json"
cat > "$smoke_dir/smoke.cnf" <<'EOF'
p cnf 6 3
c ind 1 2 3 4 0
1 2 3 0
-2 4 0
x 5 6 0
EOF
dune exec bin/unigen_cli.exe -- serve --socket "$sock" \
    --metrics-json "$metrics" > "$smoke_dir/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
done
[ -S "$sock" ] || { echo "error: daemon did not create $sock" >&2; exit 1; }
client() {
    dune exec bin/unigen_cli.exe -- client "$smoke_dir/smoke.cnf" \
        --socket "$sock" -n 3 -s 7 "$@"
}
client > "$smoke_dir/serial1.out"
grep -q 'cache=miss' "$smoke_dir/serial1.out" || { echo "error: first request should miss" >&2; exit 1; }
client | grep -q 'cache=hit'  || { echo "error: second request should hit the cache" >&2; exit 1; }
client --shutdown > /dev/null
wait "$serve_pid"
grep -q '"service.cache_hits": 1' "$metrics" || {
    echo "error: metrics JSON should record exactly one cache hit" >&2
    cat "$metrics" >&2
    exit 1
}
grep -q '"service.cache_misses": 1' "$metrics" || {
    echo "error: metrics JSON should record exactly one cache miss" >&2
    exit 1
}

echo "== service smoke (--jobs 2, audit mode)"
# Same end-to-end flow against a daemon that executes requests on
# worker domains, with the correctness audit live so Audit.Ownership
# single-owner tags are checked on the parallel path. Witnesses must
# stay bit-identical to the serial daemon's for the same seeds.
sock2="$smoke_dir/unigen2.sock"
UNIGEN_AUDIT=1 UNIGEN_AUDIT_PERIOD=16 dune exec bin/unigen_cli.exe -- serve \
    --socket "$sock2" --jobs 2 > "$smoke_dir/serve2.log" 2>&1 &
serve2_pid=$!
trap 'kill "$serve_pid" "$serve2_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
for _ in $(seq 1 100); do
    [ -S "$sock2" ] && break
    sleep 0.1
done
[ -S "$sock2" ] || { echo "error: parallel daemon did not create $sock2" >&2; cat "$smoke_dir/serve2.log" >&2; exit 1; }
client2() {
    dune exec bin/unigen_cli.exe -- client "$smoke_dir/smoke.cnf" \
        --socket "$sock2" -n 3 -s 7 "$@"
}
client2 > "$smoke_dir/par1.out"
grep -q 'cache=miss' "$smoke_dir/par1.out" || { echo "error: first parallel request should miss" >&2; exit 1; }
client2 > "$smoke_dir/par2.out"
grep -q 'cache=hit' "$smoke_dir/par2.out" || { echo "error: second parallel request should hit" >&2; exit 1; }
# determinism across daemons and cache states: the parallel daemon's
# witnesses (miss and hit path alike) must be bit-identical to the
# serial daemon's for the same formula and seeds
grep '^v ' "$smoke_dir/serial1.out" > "$smoke_dir/serial.witness"
grep '^v ' "$smoke_dir/par1.out" > "$smoke_dir/par1.witness"
grep '^v ' "$smoke_dir/par2.out" > "$smoke_dir/par2.witness"
cmp -s "$smoke_dir/serial.witness" "$smoke_dir/par1.witness" || {
    echo "error: parallel daemon's witnesses differ from the serial daemon's" >&2
    exit 1
}
cmp -s "$smoke_dir/par1.witness" "$smoke_dir/par2.witness" || {
    echo "error: parallel daemon's miss and hit paths disagree on witnesses" >&2
    exit 1
}
client2 --shutdown > /dev/null
wait "$serve2_pid"

echo "== telemetry smoke (structured log, trace ids, monitor)"
# Daemon with the structured event log enabled: drive a miss and a hit,
# assert one service.request JSON line per request carrying the full
# per-request schema, that a client-supplied trace id is echoed end to
# end (response AND log line), that the server mints an id when the
# client sends none, and that `unigen monitor --once` renders the
# rolling-window report and exits 0.
sock3="$smoke_dir/unigen3.sock"
log3="$smoke_dir/events.jsonl"
dune exec bin/unigen_cli.exe -- serve --socket "$sock3" \
    --log-file "$log3" > "$smoke_dir/serve3.log" 2>&1 &
serve3_pid=$!
trap 'kill "$serve_pid" "$serve2_pid" "$serve3_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
for _ in $(seq 1 100); do
    [ -S "$sock3" ] && break
    sleep 0.1
done
[ -S "$sock3" ] || { echo "error: telemetry daemon did not create $sock3" >&2; cat "$smoke_dir/serve3.log" >&2; exit 1; }
client3() {
    dune exec bin/unigen_cli.exe -- client "$smoke_dir/smoke.cnf" \
        --socket "$sock3" -n 3 -s 7 "$@"
}
client3 --trace-id smoke-req-1 > "$smoke_dir/tel1.out"
grep -q 'cache=miss' "$smoke_dir/tel1.out" || { echo "error: first telemetry request should miss" >&2; exit 1; }
grep -q 'trace_id=smoke-req-1' "$smoke_dir/tel1.out" || {
    echo "error: client-supplied trace id not echoed in the response" >&2
    cat "$smoke_dir/tel1.out" >&2
    exit 1
}
client3 > "$smoke_dir/tel2.out"
grep -q 'cache=hit' "$smoke_dir/tel2.out" || { echo "error: second telemetry request should hit" >&2; exit 1; }
grep -q 'trace_id=req-' "$smoke_dir/tel2.out" || {
    echo "error: server should mint a trace id when the client sends none" >&2
    cat "$smoke_dir/tel2.out" >&2
    exit 1
}
dune exec bin/unigen_cli.exe -- monitor "$sock3" --once > "$smoke_dir/monitor.out" || {
    echo "error: monitor --once failed" >&2
    exit 1
}
grep -q 'requests' "$smoke_dir/monitor.out" || {
    echo "error: monitor output missing the window report" >&2
    cat "$smoke_dir/monitor.out" >&2
    exit 1
}
client3 --shutdown > /dev/null
wait "$serve3_pid"
req_lines=$(grep -c '"event": "service.request"' "$log3" || true)
[ "$req_lines" = "2" ] || {
    echo "error: expected 2 service.request log lines, got $req_lines" >&2
    cat "$log3" >&2
    exit 1
}
for key in ts level trace_id fingerprint outcome queue_ms prepare_ms draw_ms cache xor_engine; do
    [ "$(grep '"event": "service.request"' "$log3" | grep -c "\"$key\"")" = "2" ] || {
        echo "error: service.request log lines missing \"$key\"" >&2
        cat "$log3" >&2
        exit 1
    }
done
grep -q '"trace_id": "smoke-req-1"' "$log3" || {
    echo "error: log should record the client-supplied trace id" >&2
    cat "$log3" >&2
    exit 1
}
grep -q '"event": "service.start"' "$log3" || { echo "error: missing service.start event" >&2; exit 1; }
grep -q '"event": "service.stop"' "$log3" || { echo "error: missing service.stop event" >&2; exit 1; }

echo "== durable store smoke (restart persistence)"
# Daemon with a spill directory: a cold miss spills the preparation to
# disk; a restarted daemon over the same directory serves it disk-warm
# (cache=disk, no ApproxMC re-run) with bit-identical witnesses; a
# corrupted spill entry is quarantined and falls back to a clean
# re-preparation — witnesses still identical.
spill="$smoke_dir/spill"
sock4="$smoke_dir/unigen4.sock"
serve4() {
    rm -f "$sock4"
    dune exec bin/unigen_cli.exe -- serve --socket "$sock4" \
        --spill-dir "$spill" >> "$smoke_dir/serve4.log" 2>&1 &
    serve4_pid=$!
    trap 'kill "$serve_pid" "$serve2_pid" "$serve3_pid" "$serve4_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
    for _ in $(seq 1 100); do
        [ -S "$sock4" ] && break
        sleep 0.1
    done
    [ -S "$sock4" ] || { echo "error: durable daemon did not create $sock4" >&2; cat "$smoke_dir/serve4.log" >&2; exit 1; }
}
client4() {
    dune exec bin/unigen_cli.exe -- client "$smoke_dir/smoke.cnf" \
        --socket "$sock4" -n 3 -s 7 "$@"
}
serve4
client4 > "$smoke_dir/dur1.out"
grep -q 'cache=miss' "$smoke_dir/dur1.out" || { echo "error: first durable request should miss" >&2; exit 1; }
client4 | grep -q 'cache=hit' || { echo "error: second durable request should hit RAM" >&2; exit 1; }
client4 --shutdown > /dev/null
wait "$serve4_pid"
ls "$spill"/*.prep > /dev/null 2>&1 || {
    echo "error: preparation was not spilled to $spill" >&2
    ls -la "$spill" >&2 || true
    exit 1
}
# generation 2: restart over the same spill directory
serve4
client4 > "$smoke_dir/dur2.out"
grep -q 'cache=disk' "$smoke_dir/dur2.out" || {
    echo "error: restarted daemon should serve disk-warm (cache=disk)" >&2
    cat "$smoke_dir/dur2.out" >&2
    exit 1
}
grep '^v ' "$smoke_dir/dur1.out" > "$smoke_dir/dur1.witness"
grep '^v ' "$smoke_dir/dur2.out" > "$smoke_dir/dur2.witness"
cmp -s "$smoke_dir/dur1.witness" "$smoke_dir/dur2.witness" || {
    echo "error: disk-warm witnesses differ from the cold run's" >&2
    exit 1
}
client4 --status > "$smoke_dir/dur_status.out"
grep -q 'store.hit = 1' "$smoke_dir/dur_status.out" || {
    echo "error: status should report the store.hit counter" >&2
    cat "$smoke_dir/dur_status.out" >&2
    exit 1
}
client4 --shutdown > /dev/null
wait "$serve4_pid"
# generation 3: corrupt the spill entry; the daemon must quarantine it
# and re-prepare cleanly
for prep in "$spill"/*.prep; do
    printf 'bit rot' >> "$prep"
done
serve4
client4 > "$smoke_dir/dur3.out"
grep -q 'cache=miss' "$smoke_dir/dur3.out" || {
    echo "error: corrupt spill entry should fall back to a clean miss" >&2
    cat "$smoke_dir/dur3.out" >&2
    exit 1
}
[ -n "$(ls "$spill/quarantine" 2>/dev/null)" ] || {
    echo "error: corrupt spill entry was not quarantined" >&2
    ls -la "$spill" >&2 || true
    exit 1
}
grep '^v ' "$smoke_dir/dur3.out" > "$smoke_dir/dur3.witness"
cmp -s "$smoke_dir/dur1.witness" "$smoke_dir/dur3.witness" || {
    echo "error: re-prepared witnesses differ after quarantine" >&2
    exit 1
}
client4 --shutdown > /dev/null
wait "$serve4_pid"

echo "== fleet smoke (--fleet 2)"
# Two replica daemons under one supervisor; the client lists both
# sockets and routes by consistent hashing on the formula fingerprint.
# The fleet's witnesses must be bit-identical to the single daemon's
# from the first smoke (same formula, same seeds).
sockf="$smoke_dir/fleet.sock"
dune exec bin/unigen_cli.exe -- serve --socket "$sockf" --fleet 2 \
    > "$smoke_dir/serve_fleet.log" 2>&1 &
fleet_pid=$!
trap 'kill "$serve_pid" "$serve2_pid" "$serve3_pid" "$serve4_pid" "$fleet_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
for _ in $(seq 1 100); do
    [ -S "$sockf.0" ] && [ -S "$sockf.1" ] && break
    sleep 0.1
done
{ [ -S "$sockf.0" ] && [ -S "$sockf.1" ]; } || {
    echo "error: fleet replicas did not come up" >&2
    cat "$smoke_dir/serve_fleet.log" >&2
    exit 1
}
clientf() {
    dune exec bin/unigen_cli.exe -- client "$smoke_dir/smoke.cnf" \
        --socket "$sockf.0" --socket "$sockf.1" -n 3 -s 7 "$@"
}
clientf > "$smoke_dir/fleet1.out"
grep -q 'cache=miss' "$smoke_dir/fleet1.out" || { echo "error: first fleet request should miss" >&2; exit 1; }
clientf > "$smoke_dir/fleet2.out"
grep -q 'cache=hit' "$smoke_dir/fleet2.out" || {
    echo "error: repeat fleet request should land warm on the same shard" >&2
    cat "$smoke_dir/fleet2.out" >&2
    exit 1
}
grep '^v ' "$smoke_dir/fleet1.out" > "$smoke_dir/fleet1.witness"
cmp -s "$smoke_dir/serial.witness" "$smoke_dir/fleet1.witness" || {
    echo "error: fleet witnesses differ from the single daemon's" >&2
    exit 1
}
# per-shard status: each replica identifies itself
clientf --status > "$smoke_dir/fleet_status.out"
grep -q 'shard = 0/2' "$smoke_dir/fleet_status.out" || {
    echo "error: shard 0 missing from fleet status" >&2
    cat "$smoke_dir/fleet_status.out" >&2
    exit 1
}
grep -q 'shard = 1/2' "$smoke_dir/fleet_status.out" || {
    echo "error: shard 1 missing from fleet status" >&2
    exit 1
}
clientf --shutdown > /dev/null
wait "$fleet_pid"

echo "ok"

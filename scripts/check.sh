#!/bin/sh
# CI smoke check: fast typecheck, full test suite, and repo-hygiene
# guards. Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

# Guard: no build artefacts may be committed. A tracked _build/ path
# means someone ran `git add -A` with a stale .gitignore.
tracked_build=$(git ls-files | grep -E '(^|/)_build/' || true)
if [ -n "$tracked_build" ]; then
    echo "error: build artefacts are tracked by git:" >&2
    echo "$tracked_build" | sed 's/^/  /' >&2
    echo "run: git rm -r --cached _build" >&2
    exit 1
fi

echo "== dune build @check"
dune build @check

echo "== dune runtest"
dune runtest

echo "ok"

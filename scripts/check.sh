#!/bin/sh
# CI smoke check: fast typecheck, full test suite, and repo-hygiene
# guards. Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

# Guard: no build artefacts may be committed. A tracked _build/ path
# means someone ran `git add -A` with a stale .gitignore.
tracked_build=$(git ls-files | grep -E '(^|/)_build/' || true)
if [ -n "$tracked_build" ]; then
    echo "error: build artefacts are tracked by git:" >&2
    echo "$tracked_build" | sed 's/^/  /' >&2
    echo "run: git rm -r --cached _build" >&2
    exit 1
fi

echo "== dune build @check"
dune build @check

echo "== lint"
# Repo-specific rules (determinism, hot-path hygiene, .mli coverage);
# findings are JSON on stdout, unallowlisted ones fail the build.
dune exec bin/lint.exe -- --root . > /dev/null

echo "== dune runtest"
dune runtest

echo "== dune runtest (audit mode)"
# Second pass with the correctness-audit subsystem live: sampled
# invariant sweeps, witness re-evaluation, blocking-set and ownership
# checks. A longer sweep period keeps the pass ~2x baseline cost.
UNIGEN_AUDIT=1 UNIGEN_AUDIT_PERIOD=256 dune runtest --force

echo "ok"

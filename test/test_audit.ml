(* Mutation tests for the correctness-audit subsystem: each seeded
   corruption of live solver state must be caught by the invariant
   sanitizer, and clean states must never trip it. *)

let clause = Cnf.Clause.of_dimacs
let xor_c vars rhs = Cnf.Xor_clause.make vars rhs

(* Run [f] and report which invariant (if any) it violated. *)
let violation_of f =
  match f () with
  | () -> None
  | exception Audit.Violation r -> Some r.Audit.invariant

let expect_violation name expected f =
  match violation_of f with
  | Some inv when List.mem inv expected -> ()
  | Some inv ->
      Alcotest.failf "%s: caught, but as invariant %S (expected one of %s)" name
        inv
        (String.concat ", " expected)
  | None -> Alcotest.failf "%s: corruption not detected" name

let expect_applied name applied = Alcotest.(check bool) (name ^ " applied") true applied

(* ------------------------------------------------------------------ *)
(* Handcrafted corruptions, one per injector *)

let test_detects_dropped_watch () =
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ 1; 2 ]; clause [ -1; 3 ] ] in
  let s = Sat.Solver.create f in
  expect_applied "drop_watch" (Sat.Solver.Corrupt.drop_watch s);
  expect_violation "drop_watch" [ "watch-attached"; "two-watch" ] (fun () ->
      Sat.Solver.check_invariants s)

let test_detects_stale_group () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1; 2 ] ] in
  let s = Sat.Solver.create f in
  expect_applied "stale_group" (Sat.Solver.Corrupt.stale_group s);
  expect_violation "stale_group" [ "group-hygiene" ] (fun () ->
      Sat.Solver.check_invariants s)

let test_detects_flipped_xor_parity () =
  (* attach the xor while its variables are free (units added at build
     time would be substituted away), then force them at level 0: the
     attached xor ends up fully assigned and satisfied; ~gauss:false
     targets the 2-watch engine — the matrix has its own injectors *)
  let s = Sat.Solver.create_empty ~gauss:false 3 in
  Sat.Solver.add_xor s (xor_c [ 1; 2; 3 ] false);
  Sat.Solver.add_clause s [ Cnf.Lit.pos 1 ];
  Sat.Solver.add_clause s [ Cnf.Lit.pos 2 ];
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  expect_applied "flip_xor_parity" (Sat.Solver.Corrupt.flip_xor_parity s);
  (* the flipped parity surfaces either as the xor no longer being
     satisfied, or as the xor-propagated variable's reason breaking *)
  expect_violation "flip_xor_parity" [ "xor-satisfied"; "reason-consistency" ]
    (fun () -> Sat.Solver.check_invariants s)

(* Gauss-engine corruptions. Default solvers route multi-variable XORs
   into the in-search matrix; at a root fixpoint the matrix is clean,
   so the gauss-* checks are armed. *)

let test_detects_gauss_flipped_rhs () =
  (* force the row to unit-propagate: it ends up detached (satisfied),
     which is the state flip_rhs corrupts *)
  let s = Sat.Solver.create_empty 3 in
  Sat.Solver.add_xor s (xor_c [ 1; 2; 3 ] true);
  Sat.Solver.add_clause s [ Cnf.Lit.pos 1 ];
  Sat.Solver.add_clause s [ Cnf.Lit.pos 2 ];
  expect_applied "gauss_flip_rhs" (Sat.Solver.Corrupt.gauss_flip_rhs s);
  expect_violation "gauss_flip_rhs" [ "gauss-detached"; "reason-consistency" ]
    (fun () -> Sat.Solver.check_invariants s)

let test_detects_gauss_stolen_basic () =
  let s = Sat.Solver.create_empty 4 in
  Sat.Solver.add_xor s (xor_c [ 1; 2; 3 ] true);
  Sat.Solver.add_xor s (xor_c [ 2; 3; 4 ] false);
  expect_applied "gauss_steal_basic" (Sat.Solver.Corrupt.gauss_steal_basic s);
  expect_violation "gauss_steal_basic" [ "gauss-basic" ] (fun () ->
      Sat.Solver.check_invariants s)

let test_detects_gauss_false_detach () =
  let s = Sat.Solver.create_empty 3 in
  Sat.Solver.add_xor s (xor_c [ 1; 2; 3 ] true);
  expect_applied "gauss_false_detach" (Sat.Solver.Corrupt.gauss_false_detach s);
  expect_violation "gauss_false_detach" [ "gauss-detached" ] (fun () ->
      Sat.Solver.check_invariants s)

let test_detects_gauss_dropped_watch () =
  let s = Sat.Solver.create_empty 3 in
  Sat.Solver.add_xor s (xor_c [ 1; 2; 3 ] false);
  expect_applied "gauss_drop_watch" (Sat.Solver.Corrupt.gauss_drop_watch s);
  expect_violation "gauss_drop_watch" [ "gauss-watch" ] (fun () ->
      Sat.Solver.check_invariants s)

let test_detects_bumped_trail_level () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1 ] ] in
  let s = Sat.Solver.create f in
  expect_applied "bump_trail_level" (Sat.Solver.Corrupt.bump_trail_level s);
  expect_violation "bump_trail_level"
    [ "trail-consistency"; "level-monotonic"; "reason-consistency" ]
    (fun () -> Sat.Solver.check_invariants s)

let test_detects_scrambled_heap () =
  let f = Cnf.Formula.create ~num_vars:4 [] in
  let s = Sat.Solver.create f in
  expect_applied "scramble_heap" (Sat.Solver.Corrupt.scramble_heap s);
  expect_violation "scramble_heap" [ "heap-index"; "heap-property" ] (fun () ->
      Sat.Solver.check_invariants s)

let test_detects_flipped_model_bit () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1 ]; clause [ 1; 2 ] ] in
  let s = Sat.Solver.create f in
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  expect_applied "flip_model_bit" (Sat.Solver.Corrupt.flip_model_bit s);
  expect_violation "flip_model_bit" [ "model-audit" ] (fun () ->
      Sat.Solver.audit_model s)

(* ------------------------------------------------------------------ *)
(* Clean states never trip the sanitizer *)

let prop_clean_states_pass =
  QCheck2.Test.make ~count:300 ~name:"sanitizer accepts uncorrupted states"
    Test_util.Gen.formula_spec
    (fun spec ->
      let f = Test_util.Gen.build_spec spec in
      let s = Sat.Solver.create f in
      Sat.Solver.check_invariants s;
      (match Sat.Solver.solve s with
      | Sat.Solver.Sat -> Sat.Solver.audit_model s
      | _ -> ());
      Sat.Solver.check_invariants s;
      true)

(* Every applicable corruption is detected on random solved states. *)
let injectors =
  [
    ("drop_watch", Sat.Solver.Corrupt.drop_watch, `Invariants);
    ("stale_group", Sat.Solver.Corrupt.stale_group, `Invariants);
    ("flip_xor_parity", Sat.Solver.Corrupt.flip_xor_parity, `Invariants);
    ("bump_trail_level", Sat.Solver.Corrupt.bump_trail_level, `Invariants);
    ("scramble_heap", Sat.Solver.Corrupt.scramble_heap, `Invariants);
    ("flip_model_bit", Sat.Solver.Corrupt.flip_model_bit, `Model);
    ("gauss_flip_rhs", Sat.Solver.Corrupt.gauss_flip_rhs, `Gauss);
    ("gauss_steal_basic", Sat.Solver.Corrupt.gauss_steal_basic, `Gauss);
    ("gauss_false_detach", Sat.Solver.Corrupt.gauss_false_detach, `Gauss);
    ("gauss_drop_watch", Sat.Solver.Corrupt.gauss_drop_watch, `Gauss);
  ]

let prop_corruptions_detected =
  QCheck2.Test.make ~count:300 ~name:"every applicable corruption is caught"
    QCheck2.Gen.(pair Test_util.Gen.formula_spec (int_bound 9))
    (fun (spec, which) ->
      let f = Test_util.Gen.build_spec spec in
      let s = Sat.Solver.create f in
      ignore (Sat.Solver.solve s);
      let view = Sat.Solver.audit_view s in
      let name, inject, checker = List.nth injectors which in
      (* detection contracts hold on healthy, propagated states: on a
         broken solver (UNSAT) the sanitizer deliberately skips the
         trail / group / fixpoint checks *)
      if not (view.Audit.State.ok && view.Audit.State.at_fixpoint) then true
      else if
        (* gauss-* checks are armed only on clean matrices: a backjump
           at the end of [solve] legitimately leaves repairs pending *)
        checker = `Gauss
        && List.exists
             (fun g -> g.Audit.State.g_dirty)
             view.Audit.State.matrices
      then true
      else if not (inject s) then true (* not applicable to this state *)
      else
        (* flipping a don't-care model bit yields another genuine model
           of f: the auditor accepting it is correct, not a miss *)
        let detectable =
          match checker with
          | `Invariants | `Gauss -> true
          | `Model -> not (Cnf.Model.satisfies f (Sat.Solver.model s))
        in
        let check () =
          match checker with
          | `Invariants | `Gauss -> Sat.Solver.check_invariants s
          | `Model -> Sat.Solver.audit_model s
        in
        match violation_of check with
        | Some _ -> true
        | None ->
            if detectable then
              QCheck2.Test.fail_reportf "undetected corruption: %s" name
            else true)

(* ------------------------------------------------------------------ *)
(* Config and ownership behaviour *)

(* The suite must behave identically under UNIGEN_AUDIT=1 (the CI
   audit pass), so tests that toggle the global switch restore
   whatever state they found. *)
let with_audit b f =
  let was_enabled = Audit.is_enabled () in
  let old_period = Audit.get_period () in
  (if b then Audit.enable () else Audit.disable ());
  Fun.protect
    ~finally:(fun () ->
      Audit.set_period old_period;
      if was_enabled then Audit.enable () else Audit.disable ())
    f

let test_tick_respects_enable () =
  with_audit false (fun () ->
      Alcotest.(check bool) "disabled: never fires" false (Audit.tick ()));
  with_audit true (fun () ->
      Audit.set_period 1;
      Alcotest.(check bool) "period 1: always fires" true (Audit.tick ());
      Audit.set_period 1000;
      Alcotest.(check bool) "long period: not yet" false (Audit.tick ()))

let test_set_period_rejects_nonpositive () =
  expect_violation "set_period 0" [ "audit-config" ] (fun () -> Audit.set_period 0)

let test_ownership_flags_cross_domain_use () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1; 2 ] ] in
  let s = Sat.Solver.create f in
  with_audit true (fun () ->
      let d =
        Domain.spawn (fun () ->
            violation_of (fun () -> Sat.Solver.check_invariants s))
      in
      match Domain.join d with
      | Some "domain-ownership" -> ()
      | Some inv -> Alcotest.failf "wrong invariant: %s" inv
      | None -> Alcotest.fail "cross-domain touch not flagged");
  (* same-domain use stays fine, audit on or off *)
  Sat.Solver.check_invariants s

let test_ownership_silent_when_disabled () =
  let f = Cnf.Formula.create ~num_vars:1 [] in
  let s = Sat.Solver.create f in
  with_audit false (fun () ->
      let d =
        Domain.spawn (fun () ->
            violation_of (fun () -> ignore (Sat.Solver.solve s)))
      in
      match Domain.join d with
      | None -> ()
      | Some inv -> Alcotest.failf "audit off must not flag (%s)" inv)

let () =
  Alcotest.run "audit"
    [
      ( "mutation",
        [
          Alcotest.test_case "dropped watch" `Quick test_detects_dropped_watch;
          Alcotest.test_case "stale group tag" `Quick test_detects_stale_group;
          Alcotest.test_case "flipped xor parity" `Quick test_detects_flipped_xor_parity;
          Alcotest.test_case "gauss flipped rhs" `Quick test_detects_gauss_flipped_rhs;
          Alcotest.test_case "gauss stolen basic" `Quick test_detects_gauss_stolen_basic;
          Alcotest.test_case "gauss false detach" `Quick test_detects_gauss_false_detach;
          Alcotest.test_case "gauss dropped watch" `Quick test_detects_gauss_dropped_watch;
          Alcotest.test_case "bumped trail level" `Quick test_detects_bumped_trail_level;
          Alcotest.test_case "scrambled heap" `Quick test_detects_scrambled_heap;
          Alcotest.test_case "flipped model bit" `Quick test_detects_flipped_model_bit;
        ] );
      ( "config",
        [
          Alcotest.test_case "tick gating" `Quick test_tick_respects_enable;
          Alcotest.test_case "period validation" `Quick test_set_period_rejects_nonpositive;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "cross-domain flagged" `Quick test_ownership_flags_cross_domain_use;
          Alcotest.test_case "silent when disabled" `Quick test_ownership_silent_when_disabled;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_clean_states_pass; prop_corruptions_detected ] );
    ]

(* Tests for DRAT/RUP proof logging and checking. *)

let clause = Cnf.Clause.of_dimacs

let pigeonhole ~pigeons ~holes =
  let v p h = (p * holes) + h + 1 in
  let placed =
    List.init pigeons (fun p -> clause (List.init holes (fun h -> v p h)))
  in
  let exclusive =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p2 > p1 then Some (clause [ -(v p1 h); -(v p2 h) ]) else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  Cnf.Formula.create ~num_vars:(pigeons * holes) (placed @ exclusive)

let solve_logged f =
  let s = Sat.Solver.create f in
  Sat.Solver.enable_proof_logging s;
  let r = Sat.Solver.solve s in
  (r, Sat.Solver.proof s)

(* ------------------------------------------------------------------ *)
(* Checker on hand-built proofs *)

let test_rup_accepts_valid_step () =
  (* F = (1 ∨ 2) ∧ (1 ∨ ¬2): clause (1) is RUP *)
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1; 2 ]; clause [ 1; -2 ] ] in
  Alcotest.(check bool) "(1) is RUP" true (Sat.Drat.check f [ Sat.Drat.Add [ 1 ] ])

let test_rup_rejects_invalid_step () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1; 2 ] ] in
  Alcotest.(check bool) "(1) is not RUP" false
    (Sat.Drat.check f [ Sat.Drat.Add [ 1 ] ])

let test_rup_chains_steps () =
  (* (1∨2) (1∨¬2) (¬1∨3) (¬1∨¬3) refutable: derive (1), then [] *)
  let f =
    Cnf.Formula.create ~num_vars:3
      [ clause [ 1; 2 ]; clause [ 1; -2 ]; clause [ -1; 3 ]; clause [ -1; -3 ] ]
  in
  let proof = [ Sat.Drat.Add [ 1 ]; Sat.Drat.Add [] ] in
  Alcotest.(check bool) "refutation accepted" true (Sat.Drat.refutes f proof);
  (* the empty clause alone is not RUP for this formula *)
  Alcotest.(check bool) "shortcut rejected" false
    (Sat.Drat.check f [ Sat.Drat.Add [] ])

let test_delete_steps_ignored_soundly () =
  let f =
    Cnf.Formula.create ~num_vars:3
      [ clause [ 1; 2 ]; clause [ 1; -2 ]; clause [ -1; 3 ]; clause [ -1; -3 ] ]
  in
  let proof =
    [ Sat.Drat.Add [ 1 ]; Sat.Drat.Delete [ 1; 2 ]; Sat.Drat.Add [] ]
  in
  Alcotest.(check bool) "still refutes" true (Sat.Drat.refutes f proof)

let test_refutes_requires_empty_clause () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1; 2 ]; clause [ 1; -2 ] ] in
  Alcotest.(check bool) "no empty clause" false
    (Sat.Drat.refutes f [ Sat.Drat.Add [ 1 ] ])

(* ------------------------------------------------------------------ *)
(* Text format *)

let test_format_roundtrip () =
  let proof =
    [ Sat.Drat.Add [ 1; -2 ]; Sat.Drat.Delete [ 3 ]; Sat.Drat.Add [] ]
  in
  let text = Sat.Drat.to_string proof in
  Alcotest.(check bool) "roundtrip" true (Sat.Drat.of_string text = proof)

let test_format_parse_errors () =
  Alcotest.(check bool) "missing 0" true
    (try
       ignore (Sat.Drat.of_string "1 2\n");
       false
     with Failure _ -> true)

(* Well-formed proofs survive a print/parse cycle exactly. *)
let prop_format_roundtrip_random =
  let gen_lits =
    QCheck2.Gen.(
      map
        (List.filter (fun i -> i <> 0))
        (small_list (int_range (-25) 25)))
  in
  let gen_step =
    QCheck2.Gen.(
      map
        (fun (del, lits) -> if del then Sat.Drat.Delete lits else Sat.Drat.Add lits)
        (pair bool gen_lits))
  in
  QCheck2.Test.make ~count:300 ~name:"to_string/of_string round-trips"
    (QCheck2.Gen.small_list gen_step)
    (fun proof -> Sat.Drat.of_string (Sat.Drat.to_string proof) = proof)

(* Malformed input must fail with Failure (the documented exception),
   never anything else; and whatever parses must reparse stably. *)
let prop_of_string_fuzz =
  QCheck2.Test.make ~count:1000 ~name:"of_string on junk: Failure or stable value"
    QCheck2.Gen.(
      string_size
        ~gen:(oneofl [ '0'; '1'; '7'; '9'; '-'; ' '; '\n'; '\t'; 'd'; 'x'; '%' ])
        (int_bound 40))
    (fun text ->
      match Sat.Drat.of_string text with
      | exception Failure _ -> true
      | steps -> Sat.Drat.of_string (Sat.Drat.to_string steps) = steps)

(* ------------------------------------------------------------------ *)
(* Solver-emitted proofs *)

let test_solver_proof_php () =
  List.iter
    (fun (p, h) ->
      let f = pigeonhole ~pigeons:p ~holes:h in
      match solve_logged f with
      | Sat.Solver.Unsat, proof ->
          Alcotest.(check bool)
            (Printf.sprintf "PHP(%d,%d) proof verifies (%d steps)" p h
               (List.length proof))
            true
            (Sat.Drat.refutes f proof)
      | _ -> Alcotest.failf "PHP(%d,%d) must be UNSAT" p h)
    [ (2, 1); (3, 2); (4, 3); (5, 4); (6, 5) ]

let test_solver_proof_trivial_conflict () =
  let f = Cnf.Formula.create ~num_vars:1 [ clause [ 1 ]; clause [ -1 ] ] in
  let s = Sat.Solver.create f in
  (* formula loaded at create time discovers unsat before enabling...
     so build incrementally instead *)
  let s2 = Sat.Solver.create (Cnf.Formula.create ~num_vars:1 []) in
  Sat.Solver.enable_proof_logging s2;
  Sat.Solver.add_clause s2 [ Cnf.Lit.pos 1 ];
  Sat.Solver.add_clause s2 [ Cnf.Lit.neg 1 ];
  Alcotest.(check bool) "solver unsat" true (Sat.Solver.solve s2 = Sat.Solver.Unsat);
  Alcotest.(check bool) "proof refutes" true
    (Sat.Drat.refutes f (Sat.Solver.proof s2));
  ignore s

let test_sat_formula_has_no_refutation () =
  let f = Cnf.Formula.create ~num_vars:4 [ clause [ 1; 2 ]; clause [ -3; 4 ] ] in
  match solve_logged f with
  | Sat.Solver.Sat, proof ->
      Alcotest.(check bool) "proof steps all RUP" true (Sat.Drat.check f proof);
      Alcotest.(check bool) "no empty clause" false (Sat.Drat.refutes f proof)
  | _ -> Alcotest.fail "formula is SAT"

let test_proof_refuses_xors () =
  let f =
    Cnf.Formula.create_with_xors ~num_vars:2 []
      [ Cnf.Xor_clause.make [ 1; 2 ] true ]
  in
  let s = Sat.Solver.create f in
  Alcotest.(check bool) "refused" true
    (try
       Sat.Solver.enable_proof_logging s;
       false
     with Invalid_argument _ -> true)

let prop_unsat_proofs_verify =
  QCheck2.Test.make ~count:200 ~name:"every UNSAT verdict carries a valid proof"
    QCheck2.Gen.(pair (int_bound 1000000) (int_range 1 10))
    (fun (seed, nv) ->
      let rng = Rng.create seed in
      (* clause-dense formulas so a good share are UNSAT *)
      let f =
        Test_util.Gen.random_cnf rng ~num_vars:nv ~num_clauses:(6 * nv) ~width:3
      in
      match solve_logged f with
      | Sat.Solver.Unsat, proof ->
          (not (Sat.Brute.is_sat f)) && Sat.Drat.refutes f proof
      | Sat.Solver.Sat, _ -> Sat.Brute.is_sat f
      | Sat.Solver.Unknown, _ -> false)

let () =
  Alcotest.run "drat"
    [
      ( "checker",
        [
          Alcotest.test_case "accepts valid" `Quick test_rup_accepts_valid_step;
          Alcotest.test_case "rejects invalid" `Quick test_rup_rejects_invalid_step;
          Alcotest.test_case "chains" `Quick test_rup_chains_steps;
          Alcotest.test_case "delete ignored" `Quick test_delete_steps_ignored_soundly;
          Alcotest.test_case "needs empty clause" `Quick test_refutes_requires_empty_clause;
        ] );
      ( "format",
        [
          Alcotest.test_case "roundtrip" `Quick test_format_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_format_parse_errors;
          QCheck_alcotest.to_alcotest prop_format_roundtrip_random;
          QCheck_alcotest.to_alcotest prop_of_string_fuzz;
        ] );
      ( "solver",
        [
          Alcotest.test_case "pigeonhole proofs" `Quick test_solver_proof_php;
          Alcotest.test_case "trivial conflict" `Quick test_solver_proof_trivial_conflict;
          Alcotest.test_case "sat formula" `Quick test_sat_formula_has_no_refutation;
          Alcotest.test_case "xors refused" `Quick test_proof_refuses_xors;
          QCheck_alcotest.to_alcotest prop_unsat_proofs_verify;
        ] );
    ]

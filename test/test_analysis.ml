(* Tests for lib/analysis: the token stream (incl. the quoted-string
   masking regression), the newline-offset index, every lint rule
   positive and negative through the library API on inline fixtures,
   one mutation test per concurrency rule proving it fires on a
   seeded bug, allowlist semantics incl. staleness, and the SARIF
   emitter. *)

open Analysis

let src ?(mli = true) path text = Rule.load ~mli_exists:mli ~path text

let findings ?allowlist ?design_doc ?(rules = Engine.default_rules) srcs =
  (Engine.analyze ?allowlist ?design_doc ~rules srcs).findings

let triples fs =
  List.map (fun (f : Findings.t) -> (f.rule, f.file, f.line)) fs

let check_triples msg expected fs =
  Alcotest.(check (list (triple string string int))) msg expected (triples fs)

(* ------------------------------------------------------------------ *)
(* Tokenizer *)

(* Regression for the old masker's quoted-string bug: a comment
   closer or a double quote inside a brace-pipe quoted string
   desynchronized masking for the rest of the file, so rules went
   blind (or hallucinated) after it. The tokenizer must keep lexing
   real code after the literal. *)
let test_quoted_string_mask () =
  let text =
    {x|let a = {|contains *) and " inside|}
let t = Hashtbl.create 16
|x}
  in
  let s = src ~mli:false "lib/foo/a.ml" text in
  let masked = Lazy.force s.masked in
  (* the literal is blanked ... *)
  Alcotest.(check bool)
    "literal blanked" false
    (String.length masked >= String.length "contains"
    && (let found = ref false in
        for i = 0 to String.length masked - 9 do
          if String.sub masked i 8 = "contains" then found := true
        done;
        !found));
  (* ... and the code after it still tokenizes: global-mutable-table
     fires on line 2 *)
  check_triples "rule fires after quoted string"
    [ ("global-mutable-table", "lib/foo/a.ml", 2) ]
    (findings ~rules:[ Rules_legacy.global_mutable_table ] [ s ])

let test_quoted_string_delimited () =
  (* {id|...|id}: an inner bare [|}] must NOT close it *)
  let text = "let a = {q|first |} second|q}\nlet t = Hashtbl.create 3\n" in
  let s = src ~mli:false "lib/foo/b.ml" text in
  check_triples "delimited quoted string spans the bare closer"
    [ ("global-mutable-table", "lib/foo/b.ml", 2) ]
    (findings ~rules:[ Rules_legacy.global_mutable_table ] [ s ])

let test_mask_matches_old_semantics () =
  (* comments nest; strings inside comments are skipped as strings;
     char literals blanked; newlines preserved *)
  let text =
    "let x = 1 (* outer (* nested *) \" *) unbalanced \" *) let y = '\\n'\n"
  in
  let s = src ~mli:false "lib/foo/c.ml" text in
  let masked = Lazy.force s.masked in
  Alcotest.(check int) "same length" (String.length text) (String.length masked);
  Alcotest.(check bool)
    "y binding survives masking" true
    (let found = ref false in
     for i = 0 to String.length masked - 6 do
       if String.sub masked i 5 = "let y" then found := true
     done;
     !found)

let test_lines_index () =
  let text = "a\nbb\n\nccc\n" in
  let lines = Token.Lines.make text in
  let naive pos =
    let l = ref 1 in
    for k = 0 to pos - 1 do
      if text.[k] = '\n' then incr l
    done;
    !l
  in
  for pos = 0 to String.length text do
    Alcotest.(check int)
      (Printf.sprintf "line_of %d" pos)
      (naive pos)
      (Token.Lines.line_of lines pos)
  done;
  Alcotest.(check int) "bol of 'ccc'" 6 (Token.Lines.bol_of lines 7)

let test_token_positions () =
  let text = "let x =\n  Random.int 7\n" in
  let toks, _ = Token.scan text in
  let code = Token.code toks in
  let random =
    Array.to_list code
    |> List.find (fun (t : Token.t) -> t.kind = Token.Uident "Random")
  in
  Alcotest.(check int) "Random on line 2" 2 random.line;
  Alcotest.(check int) "Random offset" 10 random.off

(* ------------------------------------------------------------------ *)
(* Legacy rules *)

let test_rule_random () =
  let pos = src "lib/core/x.ml" "let r = Random.int 5\n" in
  let neg_prng = src "lib/prng/rng.ml" "let r = Random.int 5\n" in
  let neg_qualified = src "lib/core/y.ml" "let r = My_Random.int 5\n" in
  let neg_masked =
    src "lib/core/z.ml" "(* Random *) let s = \"Random\"\n"
  in
  let rules = [ Rules_legacy.random_outside_prng ] in
  check_triples "fires in lib outside prng"
    [ ("random-outside-prng", "lib/core/x.ml", 1) ]
    (findings ~rules [ pos ]);
  check_triples "silent in lib/prng" [] (findings ~rules [ neg_prng ]);
  check_triples "silent on other idents" [] (findings ~rules [ neg_qualified ]);
  check_triples "silent in comments and strings" []
    (findings ~rules [ neg_masked ])

let test_rule_poly_compare () =
  let pos =
    src "lib/sat/x.ml" "let c = compare a b\nlet h = Hashtbl.hash v\n"
  in
  let neg_def = src "lib/sat/y.ml" "let compare a b = Int.compare a b\n" in
  let neg_typed = src "lib/sat/z.ml" "let c = Int.compare a b\n" in
  let neg_cold = src "lib/obs/w.ml" "let c = compare a b\n" in
  let rules = [ Rules_legacy.poly_compare_hot ] in
  check_triples "fires on bare compare and Hashtbl.hash"
    [ ("poly-compare-hot", "lib/sat/x.ml", 1);
      ("poly-compare-hot", "lib/sat/x.ml", 2) ]
    (findings ~rules [ pos ]);
  check_triples "definition site exempt" [] (findings ~rules [ neg_def ]);
  check_triples "typed comparator exempt" [] (findings ~rules [ neg_typed ]);
  check_triples "cold path exempt" [] (findings ~rules [ neg_cold ])

let test_rule_global_table () =
  let pos = src "lib/a/t.ml" "let tbl = Hashtbl.create 64\n" in
  let neg_local =
    src "lib/a/u.ml" "let f () =\n  let t = Hashtbl.create 4 in t\n"
  in
  let neg_bin = src "bin/b.ml" "let tbl = Hashtbl.create 64\n" in
  let rules = [ Rules_legacy.global_mutable_table ] in
  check_triples "fires on top-level table"
    [ ("global-mutable-table", "lib/a/t.ml", 1) ]
    (findings ~rules [ pos ]);
  check_triples "indented allocation exempt" [] (findings ~rules [ neg_local ]);
  check_triples "bin/ exempt" [] (findings ~rules [ neg_bin ])

let test_rule_missing_mli () =
  let pos = src ~mli:false "lib/a/m.ml" "let x = 1\n" in
  let neg = src ~mli:true "lib/a/n.ml" "let x = 1\n" in
  let neg_test = src ~mli:false "test/t.ml" "let x = 1\n" in
  let rules = [ Rules_legacy.missing_mli ] in
  check_triples "fires without mli"
    [ ("missing-mli", "lib/a/m.ml", 1) ]
    (findings ~rules [ pos ]);
  check_triples "silent with mli" [] (findings ~rules [ neg ]);
  check_triples "test/ exempt" [] (findings ~rules [ neg_test ])

let test_rule_print_hot () =
  let pos =
    src "lib/sat/solver.ml" "let () = Printf.printf \"%d\" 1\n"
  in
  let neg = src "lib/sat/session.ml" "let () = Printf.printf \"%d\" 1\n" in
  let rules = [ Rules_legacy.print_hot_path ] in
  check_triples "fires in hot module"
    [ ("print-hot-path", "lib/sat/solver.ml", 1) ]
    (findings ~rules [ pos ]);
  check_triples "silent outside the hot list" [] (findings ~rules [ neg ])

let test_rule_unmatched_span () =
  let paired_a = src "lib/a/p.ml" "let f () = Trace.span_begin \"load\"\n" in
  let paired_b = src "lib/a/q.ml" "let g () = Trace.span_end \"load\"\n" in
  let orphan =
    src "lib/a/r.ml" "let h () = Trace.span_begin ~cat:\"svc\" \"solo\"\n"
  in
  let rules = [ Rules_legacy.unmatched_span ] in
  check_triples "paired across files" []
    (findings ~rules [ paired_a; paired_b ]);
  check_triples "orphan begin flagged (label arg skipped)"
    [ ("unmatched-span", "lib/a/r.ml", 1) ]
    (findings ~rules [ orphan ])

(* ------------------------------------------------------------------ *)
(* Concurrency rules: negative (clean) + mutation (seeded bug) *)

let test_rule_domain_escape () =
  (* mutation: shared table mutated from a worker closure *)
  let seeded =
    src "lib/s/esc.ml"
      "let table = Hashtbl.create 16\n\
       let run ex =\n\
      \  Parallel.Executor.submit ex\n\
      \    ~work:(fun () -> Hashtbl.add table 1 2)\n\
      \    ~finish:(fun _ -> ())\n"
  in
  (* clean: same shape, table only touched by the owner before submit *)
  let clean_owner =
    src "lib/s/own.ml"
      "let table = Hashtbl.create 16\n\
       let run ex =\n\
      \  Hashtbl.add table 1 2;\n\
      \  Parallel.Executor.submit ex ~work:(fun () -> 3) ~finish:(fun _ -> ())\n"
  in
  (* clean: access mediated by a lock *)
  let clean_mutex =
    src "lib/s/med.ml"
      "let table = Hashtbl.create 16\n\
       let run ex =\n\
      \  Parallel.Executor.submit ex\n\
      \    ~work:(fun () -> Mutex.lock guard; Hashtbl.add table 1 2; Mutex.unlock guard)\n\
      \    ~finish:(fun _ -> ())\n"
  in
  let rules = [ Rules_concurrency.domain_escape ] in
  check_triples "seeded escape caught"
    [ ("domain-escape", "lib/s/esc.ml", 4) ]
    (findings ~rules [ seeded ]);
  check_triples "owner-side use clean" [] (findings ~rules [ clean_owner ]);
  check_triples "mutex-mediated use clean" [] (findings ~rules [ clean_mutex ])

let test_rule_atomic_rmw () =
  let seeded =
    src "lib/s/rmw.ml"
      "let bump () =\n\
      \  let v = Atomic.get counter in\n\
      \  Atomic.set counter (v + 1)\n"
  in
  let clean_faa =
    src "lib/s/faa.ml"
      "let bump () = ignore (Atomic.fetch_and_add counter 1)\n"
  in
  let clean_cas =
    src "lib/s/cas.ml"
      "let bump () =\n\
      \  let v = Atomic.get counter in\n\
      \  if Atomic.compare_and_set counter v (v + 1) then () else ();\n\
      \  Atomic.set counter 0\n"
  in
  let clean_disjoint =
    src "lib/s/dis.ml"
      "let move () =\n\
      \  let v = Atomic.get a in\n\
      \  Atomic.set b v\n"
  in
  let clean_items =
    src "lib/s/items.ml"
      "let read () = Atomic.get flag\nlet reset () = Atomic.set flag false\n"
  in
  let rules = [ Rules_concurrency.atomic_rmw ] in
  check_triples "seeded get/set window caught"
    [ ("atomic-read-modify-write", "lib/s/rmw.ml", 3) ]
    (findings ~rules [ seeded ]);
  check_triples "fetch_and_add clean" [] (findings ~rules [ clean_faa ]);
  check_triples "CAS in scope exempts the set" []
    (findings ~rules [ clean_cas ]);
  check_triples "different cells clean" [] (findings ~rules [ clean_disjoint ]);
  check_triples "separate items clean" [] (findings ~rules [ clean_items ])

let test_rule_blocking_owner () =
  let seeded_sleep =
    src "lib/service/server.ml" "let wait () = Unix.sleepf 0.1\n"
  in
  let seeded_finish =
    src "lib/service/scheduler.ml"
      "let go ex fd buf =\n\
      \  Parallel.Executor.submit ex ~work:(fun () -> 1)\n\
      \    ~finish:(fun _ -> ignore (Unix.read fd buf 0 1))\n"
  in
  let clean_worker =
    src "lib/service/scheduler.ml"
      "let go ex fd buf =\n\
      \  Parallel.Executor.submit ex\n\
      \    ~work:(fun () -> ignore (Unix.read fd buf 0 1))\n\
      \    ~finish:(fun _ -> ())\n"
  in
  let clean_elsewhere = src "lib/obs/x.ml" "let wait () = Unix.sleepf 0.1\n" in
  let rules = [ Rules_concurrency.blocking_in_owner_loop ] in
  check_triples "seeded sleep on owner loop caught"
    [ ("blocking-in-owner-loop", "lib/service/server.ml", 1) ]
    (findings ~rules [ seeded_sleep ]);
  check_triples "seeded blocking read in finish thunk caught"
    [ ("blocking-in-owner-loop", "lib/service/scheduler.ml", 3) ]
    (findings ~rules [ seeded_finish ]);
  check_triples "blocking read in work closure clean" []
    (findings ~rules [ clean_worker ]);
  check_triples "sleep outside owner modules clean" []
    (findings ~rules [ clean_elsewhere ])

let test_rule_mutex_discipline () =
  let seeded =
    src "lib/s/lock.ml"
      "let f t =\n  Mutex.lock t.lock;\n  work t\n"
  in
  let clean_paired =
    src "lib/s/pair.ml"
      "let f t =\n  Mutex.lock t.lock;\n  work t;\n  Mutex.unlock t.lock\n"
  in
  let clean_protect =
    src "lib/s/prot.ml"
      "let f t =\n\
      \  Mutex.lock t.lock;\n\
      \  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> work t)\n"
  in
  let seeded_wrong_lock =
    src "lib/s/wrong.ml"
      "let f a b =\n  Mutex.lock a.lock;\n  work a;\n  Mutex.unlock b.lock\n"
  in
  let rules = [ Rules_concurrency.mutex_discipline ] in
  check_triples "seeded missing unlock caught"
    [ ("mutex-discipline", "lib/s/lock.ml", 2) ]
    (findings ~rules [ seeded ]);
  check_triples "paired lock/unlock clean" []
    (findings ~rules [ clean_paired ]);
  check_triples "Fun.protect clean" [] (findings ~rules [ clean_protect ]);
  check_triples "unlock of a different lock caught"
    [ ("mutex-discipline", "lib/s/wrong.ml", 2) ]
    (findings ~rules [ seeded_wrong_lock ])

let test_rule_metric_registry () =
  let design = "registry: `svc.requests` and `svc.latency` are known" in
  let clean =
    src "lib/s/m1.ml" "let c = Metrics.counter \"svc.requests\"\n"
  in
  let dup =
    src "lib/s/m2.ml" "let c2 = Metrics.counter \"svc.requests\"\n"
  in
  let unregistered =
    src "lib/s/m3.ml" "let c3 = Metrics.counter \"svc.unknown\"\n"
  in
  let computed = src "lib/s/m4.ml" "let c4 = Metrics.counter name\n" in
  let test_scope =
    src "test/t.ml" "let c5 = Metrics.counter \"test.anything\"\n"
  in
  let rules = [ Rules_concurrency.metric_name_registry ] in
  check_triples "registered unique name clean" []
    (findings ~rules ~design_doc:design [ clean ]);
  check_triples "seeded duplicate registration caught"
    [ ("metric-name-registry", "lib/s/m2.ml", 1) ]
    (findings ~rules ~design_doc:design [ clean; dup ]);
  check_triples "seeded unregistered name caught"
    [ ("metric-name-registry", "lib/s/m3.ml", 1) ]
    (findings ~rules ~design_doc:design [ unregistered ]);
  check_triples "computed name skipped" []
    (findings ~rules ~design_doc:design [ computed ]);
  check_triples "test/ out of scope" []
    (findings ~rules ~design_doc:design [ test_scope ])

let test_rule_durable_write_discipline () =
  let seeded =
    src "lib/store/sidecar.ml"
      "let save path data =\n\
      \  let oc = open_out_bin path in\n\
      \  output_string oc data;\n\
      \  close_out oc\n"
  in
  let seeded_qualified =
    src "lib/service/spill.ml"
      "let w oc = Out_channel.output_string oc \"x\"\n"
  in
  let clean_atomic =
    src "lib/store/store.ml"
      "let atomic_write ~dir ~path data =\n\
      \  let oc = open_out_bin (path ^ \".tmp\") in\n\
      \  output_string oc data;\n\
      \  close_out oc;\n\
      \  Unix.rename (path ^ \".tmp\") path\n"
  in
  let clean_elsewhere =
    src "bin/report.ml"
      "let dump path data =\n\
      \  let oc = open_out path in\n\
      \  output_string oc data;\n\
      \  close_out oc\n"
  in
  let clean_unbuffered =
    src "lib/store/raw.ml"
      "let push fd data = ignore (Unix.write_substring fd data 0 3)\n"
  in
  let rules = Rules_durability.all in
  check_triples "seeded buffered writes caught"
    [
      ("durable-write-discipline", "lib/store/sidecar.ml", 2);
      ("durable-write-discipline", "lib/store/sidecar.ml", 3);
    ]
    (findings ~rules [ seeded ]);
  check_triples "seeded qualified writer caught"
    [ ("durable-write-discipline", "lib/service/spill.ml", 1) ]
    (findings ~rules [ seeded_qualified ]);
  check_triples "atomic_write body exempt" []
    (findings ~rules [ clean_atomic ]);
  check_triples "outside the durable layers clean" []
    (findings ~rules [ clean_elsewhere ]);
  check_triples "unbuffered syscall write clean" []
    (findings ~rules [ clean_unbuffered ])

(* ------------------------------------------------------------------ *)
(* Allowlist, severities, engine *)

let test_allowlist_suppression () =
  let s = src "lib/a/t.ml" "let tbl = Hashtbl.create 64\n" in
  let al =
    match
      Allowlist.of_string "# justified\nglobal-mutable-table lib/a/t.ml\n"
    with
    | Ok al -> al
    | Error e -> Alcotest.fail e
  in
  let report =
    Engine.analyze ~allowlist:al
      ~rules:[ Rules_legacy.global_mutable_table ] [ s ]
  in
  Alcotest.(check int) "finding still reported" 1
    (List.length report.findings);
  Alcotest.(check int) "allowlisted" 1 report.allowlisted;
  Alcotest.(check int) "not blocking" 0 report.blocking

let test_allowlist_stale () =
  let s = src "lib/a/clean.ml" "let x = 1\n" in
  let al =
    match Allowlist.of_string "print-hot-path lib/gone.ml # line 1\n" with
    | Ok al -> al
    | Error e -> Alcotest.fail e
  in
  let report =
    Engine.analyze ~allowlist:al ~rules:Engine.default_rules [ s ]
  in
  check_triples "stale entry becomes a blocking finding"
    [ ("stale-allowlist", "scripts/lint_allowlist.txt", 1) ]
    report.findings;
  Alcotest.(check int) "stale blocks" 1 report.blocking

let test_allowlist_malformed () =
  match Allowlist.of_string "one-token-only\n" with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the line" true
        (String.length msg > 0)

let test_severity_blocking () =
  let info_rule =
    { Rule.name = "advice"; severity = Findings.Info; doc = "advisory";
      phase =
        Rule.File
          (fun s -> [ { Rule.file = s.path; line = 1; message = "fyi" } ]) }
  in
  let s = src "lib/a/x.ml" "let x = 1\n" in
  let report = Engine.analyze ~rules:[ info_rule ] [ s ] in
  Alcotest.(check int) "info reported" 1 (List.length report.findings);
  Alcotest.(check int) "info never blocks" 0 report.blocking

let test_deterministic_order () =
  let a = src "lib/a/a.ml" "let r = Random.int 5\n" in
  let b = src "lib/b/b.ml" "let r = Random.int 5\n" in
  let f1 = findings ~rules:Engine.default_rules [ a; b ] in
  let f2 = findings ~rules:Engine.default_rules [ b; a ] in
  Alcotest.(check (list (triple string string int)))
    "order independent of input order" (triples f1) (triples f2)

(* ------------------------------------------------------------------ *)
(* SARIF *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_sarif_structure () =
  let s = src "lib/a/t.ml" "let tbl = Hashtbl.create 64\nlet r = Random.int 2\n" in
  let al =
    match Allowlist.of_string "global-mutable-table lib/a/t.ml\n" with
    | Ok al -> al
    | Error e -> Alcotest.fail e
  in
  let report =
    Engine.analyze ~allowlist:al ~rules:Engine.default_rules [ s ]
  in
  let sarif = Sarif.to_string ~rules:Engine.default_rules report.findings in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("sarif contains " ^ needle) true
        (contains sarif needle))
    [
      "\"version\": \"2.1.0\"";
      "\"runs\"";
      "\"results\"";
      "\"ruleId\": \"random-outside-prng\"";
      "\"level\": \"error\"";
      "\"startLine\": 1";
      "\"uri\": \"lib/a/t.ml\"";
      (* allowlisted finding carries a suppression *)
      "\"suppressions\"";
      (* rule metadata table present *)
      "\"id\": \"domain-escape\"";
    ];
  Alcotest.(check string) "severity level mapping" "warning"
    (Sarif.level_of_severity Findings.Warn)

let () =
  Alcotest.run "analysis"
    [
      ( "tokenizer",
        [
          Alcotest.test_case "quoted-string masking" `Quick
            test_quoted_string_mask;
          Alcotest.test_case "delimited quoted string" `Quick
            test_quoted_string_delimited;
          Alcotest.test_case "mask semantics" `Quick
            test_mask_matches_old_semantics;
          Alcotest.test_case "lines index" `Quick test_lines_index;
          Alcotest.test_case "token positions" `Quick test_token_positions;
        ] );
      ( "legacy rules",
        [
          Alcotest.test_case "random-outside-prng" `Quick test_rule_random;
          Alcotest.test_case "poly-compare-hot" `Quick test_rule_poly_compare;
          Alcotest.test_case "global-mutable-table" `Quick
            test_rule_global_table;
          Alcotest.test_case "missing-mli" `Quick test_rule_missing_mli;
          Alcotest.test_case "print-hot-path" `Quick test_rule_print_hot;
          Alcotest.test_case "unmatched-span" `Quick test_rule_unmatched_span;
        ] );
      ( "concurrency rules",
        [
          Alcotest.test_case "domain-escape" `Quick test_rule_domain_escape;
          Alcotest.test_case "atomic-read-modify-write" `Quick
            test_rule_atomic_rmw;
          Alcotest.test_case "blocking-in-owner-loop" `Quick
            test_rule_blocking_owner;
          Alcotest.test_case "mutex-discipline" `Quick
            test_rule_mutex_discipline;
          Alcotest.test_case "metric-name-registry" `Quick
            test_rule_metric_registry;
        ] );
      ( "durability rules",
        [
          Alcotest.test_case "durable-write-discipline" `Quick
            test_rule_durable_write_discipline;
        ] );
      ( "engine",
        [
          Alcotest.test_case "allowlist suppression" `Quick
            test_allowlist_suppression;
          Alcotest.test_case "allowlist staleness" `Quick test_allowlist_stale;
          Alcotest.test_case "allowlist malformed" `Quick
            test_allowlist_malformed;
          Alcotest.test_case "severity blocking" `Quick test_severity_blocking;
          Alcotest.test_case "deterministic order" `Quick
            test_deterministic_order;
        ] );
      ("sarif", [ Alcotest.test_case "structure" `Quick test_sarif_structure ]);
    ]

(* Tests for the incremental solver-session layer: assumption solving,
   retractable constraint groups, and the differential guarantee that
   the session paths of BSAT, ApproxMC and UniGen are observationally
   equal to the fresh-solver paths. *)

let random_lits rng ~num_vars =
  List.init
    (1 + Rng.int rng 3)
    (fun _ -> Cnf.Lit.make (1 + Rng.int rng num_vars) (Rng.bool rng))

(* ------------------------------------------------------------------ *)
(* Handcrafted group / assumption behaviours *)

let test_failed_assumptions () =
  (* 1 ∧ (¬1 ∨ 2), assume ¬2: unsatisfiable by assumption only *)
  let f =
    Cnf.Formula.create ~num_vars:2
      [ Cnf.Clause.of_dimacs [ 1 ]; Cnf.Clause.of_dimacs [ -1; 2 ] ]
  in
  (* checked_solve certifies the assumption-UNSAT against
     f + assumption units with a RUP refutation *)
  let r, s = Test_util.Check.checked_solve ~assumptions:[ Cnf.Lit.neg 2 ] f in
  (match r with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected Unsat under ~assumptions:[-2]");
  let failed = Sat.Solver.failed_assumptions s in
  Alcotest.(check bool) "failed set nonempty" true (failed <> []);
  let units = List.map (fun l -> Cnf.Clause.of_list [ l ]) failed in
  Alcotest.(check bool) "formula + failed core unsat" false
    (Sat.Brute.is_sat (Cnf.Formula.add_clauses f units));
  (* the solver is not broken: a plain solve still succeeds *)
  Alcotest.(check bool) "solver survives" true
    (Sat.Solver.solve s = Sat.Solver.Sat)

let test_pop_rescinds_group_unsat () =
  let f = Cnf.Formula.create ~num_vars:3 [ Cnf.Clause.of_dimacs [ 1; 2 ] ] in
  let s = Sat.Solver.create f in
  Sat.Solver.push_group s;
  Sat.Solver.add_group_clause s [ Cnf.Lit.pos 3 ];
  Sat.Solver.add_group_clause s [ Cnf.Lit.neg 3 ];
  Alcotest.(check bool) "group contradiction" true
    (Sat.Solver.solve s = Sat.Solver.Unsat);
  Sat.Solver.pop_group s;
  Alcotest.(check bool) "unsat rescinded by pop" true
    (Sat.Solver.solve s = Sat.Solver.Sat)

let test_base_unit_shadowed_by_group () =
  (* a base unit added while a group assignment contradicts it must
     survive the pop (the lost_units revival path) *)
  let f = Cnf.Formula.create ~num_vars:2 [] in
  let s = Sat.Solver.create f in
  Sat.Solver.push_group s;
  Sat.Solver.add_group_clause s [ Cnf.Lit.neg 1 ];
  Alcotest.(check bool) "group unit sat" true
    (Sat.Solver.solve s = Sat.Solver.Sat);
  Sat.Solver.add_clause s [ Cnf.Lit.pos 1 ];
  Alcotest.(check bool) "base vs group contradiction" true
    (Sat.Solver.solve s = Sat.Solver.Unsat);
  Sat.Solver.pop_group s;
  (match Sat.Solver.solve s with
  | Sat.Solver.Sat ->
      Alcotest.(check bool) "base unit survives pop" true
        (Cnf.Model.value (Sat.Solver.model s) 1)
  | _ -> Alcotest.fail "expected Sat after pop")

(* ------------------------------------------------------------------ *)
(* Property (a): solve ~assumptions = solving formula + unit clauses *)

let prop_assumptions_agree =
  QCheck2.Test.make ~count:300
    ~name:"solve ~assumptions = formula + unit clauses"
    QCheck2.Gen.(pair Test_util.Gen.formula_spec (int_bound 100_000))
    (fun (spec, aseed) ->
      let f = Test_util.Gen.build_spec spec in
      let rng = Rng.create aseed in
      let assumptions =
        List.init (Rng.int rng 5) (fun _ ->
            Cnf.Lit.make (1 + Rng.int rng f.Cnf.Formula.num_vars) (Rng.bool rng))
      in
      let units = List.map (fun l -> Cnf.Clause.of_list [ l ]) assumptions in
      let expected = Sat.Brute.is_sat (Cnf.Formula.add_clauses f units) in
      match Test_util.Check.checked_solve ~assumptions f with
      | Sat.Solver.Sat, s ->
          expected
          && Cnf.Model.satisfies f (Sat.Solver.model s)
          && List.for_all
               (fun l ->
                 Cnf.Model.value (Sat.Solver.model s) (Cnf.Lit.var l)
                 = Cnf.Lit.sign l)
               assumptions
      | Sat.Solver.Unsat, s ->
          (not expected)
          &&
          (* when the formula alone is satisfiable the failed-assumption
             core must be a genuine reason for the refusal *)
          if Sat.Brute.is_sat f then
            let failed = Sat.Solver.failed_assumptions s in
            failed <> []
            && not
                 (Sat.Brute.is_sat
                    (Cnf.Formula.add_clauses f
                       (List.map (fun l -> Cnf.Clause.of_list [ l ]) failed)))
          else true
      | Sat.Solver.Unknown, _ -> false)

(* ------------------------------------------------------------------ *)
(* Property (b): after pop_group the solver answers as if the group
   had never been pushed — across repeated push/solve/pop rounds *)

let prop_pop_restores =
  QCheck2.Test.make ~count:250 ~name:"pop_group restores pre-push behaviour"
    QCheck2.Gen.(
      tup3 Test_util.Gen.formula_spec (int_bound 100_000) (int_bound 100_000))
    (fun (spec, gseed1, gseed2) ->
      let f = Test_util.Gen.build_spec spec in
      let nv = f.Cnf.Formula.num_vars in
      let base_sat = Sat.Brute.is_sat f in
      let s = Sat.Solver.create f in
      let base_matches () =
        match Sat.Solver.solve s with
        | Sat.Solver.Sat ->
            base_sat && Cnf.Model.satisfies f (Sat.Solver.model s)
        | Sat.Solver.Unsat -> not base_sat
        | Sat.Solver.Unknown -> false
      in
      let layer_round gseed =
        let rng = Rng.create gseed in
        let lits =
          List.init (1 + Rng.int rng 5) (fun _ -> random_lits rng ~num_vars:nv)
        in
        let xor = Test_util.Gen.random_xor rng ~num_vars:nv in
        let g =
          Cnf.Formula.add_xors
            (Cnf.Formula.add_clauses f (List.map Cnf.Clause.of_list lits))
            [ xor ]
        in
        Sat.Solver.push_group s;
        List.iter (Sat.Solver.add_group_clause s) lits;
        Sat.Solver.add_group_xor s xor;
        let expected = Sat.Brute.is_sat g in
        let ok =
          match Sat.Solver.solve s with
          | Sat.Solver.Sat ->
              expected && Cnf.Model.satisfies g (Sat.Solver.model s)
          | Sat.Solver.Unsat -> not expected
          | Sat.Solver.Unknown -> false
        in
        Sat.Solver.pop_group s;
        ok
      in
      base_matches () && layer_round gseed1 && base_matches ()
      && layer_round gseed2 && base_matches ())

(* ------------------------------------------------------------------ *)
(* Property (c): blocking clauses persisted into the base survive
   XOR-layer swaps — no witness is ever returned twice, and the
   persisted chunks reconstruct the exact witness set *)

let small_spec =
  QCheck2.Gen.(
    map
      (fun (seed, nv, nc, nx) -> (seed, 1 + nv, nc, nx))
      (tup4 (int_bound 1_000_000) (int_bound 6) (int_bound 18) (int_bound 3)))

let prop_blocking_survives_swaps =
  QCheck2.Test.make ~count:120
    ~name:"persisted blocking clauses survive xor-layer swaps"
    QCheck2.Gen.(pair small_spec (int_bound 100_000))
    (fun (spec, xseed) ->
      let f = Test_util.Gen.build_spec spec in
      let proj = Cnf.Formula.sampling_vars f in
      let total = Sat.Brute.count_projected f proj in
      let full = Sat.Bsat.enumerate ~limit:(total + 1) f in
      let sess = Sat.Bsat.Session.create f in
      let rng = Rng.create xseed in
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      let finished = ref false in
      let rounds = ref 0 in
      while (not !finished) && !rounds <= (total / 3) + 2 do
        incr rounds;
        let out = Sat.Bsat.Session.enumerate ~persist_blocking:true ~limit:3 sess in
        List.iter
          (fun m ->
            let k = Cnf.Model.key m in
            if Hashtbl.mem seen k then ok := false;
            Hashtbl.replace seen k ())
          out.Sat.Bsat.models;
        if out.Sat.Bsat.models = [] then finished := true
        else begin
          (* swap in a random XOR layer between persisting chunks: its
             witnesses must respect the blocking clauses added so far
             and the layer must vanish again afterwards *)
          let xors = [ Test_util.Gen.random_xor rng ~num_vars:f.Cnf.Formula.num_vars ] in
          let layer = Sat.Bsat.Session.enumerate ~xors ~limit:(total + 1) sess in
          let g = Cnf.Formula.add_xors f xors in
          List.iter
            (fun m ->
              if Hashtbl.mem seen (Cnf.Model.key m) then ok := false;
              if not (Cnf.Model.satisfies g m) then ok := false)
            layer.Sat.Bsat.models
        end
      done;
      !ok && !finished
      && Hashtbl.length seen = total
      && List.for_all
           (fun m -> Hashtbl.mem seen (Cnf.Model.key m))
           full.Sat.Bsat.models)

(* ------------------------------------------------------------------ *)
(* Differential guard: session enumeration equals the fresh path,
   layer after layer from one warm session *)

let prop_session_matches_fresh =
  QCheck2.Test.make ~count:200 ~name:"session enumerate = fresh enumerate"
    QCheck2.Gen.(
      tup3 Test_util.Gen.formula_spec (int_bound 100_000) (int_range 1 8))
    (fun (spec, xseed, limit) ->
      let f = Test_util.Gen.build_spec spec in
      let rng = Rng.create xseed in
      let sess = Sat.Bsat.Session.create f in
      let ok = ref true in
      for _ = 1 to 3 do
        let xors =
          List.init (Rng.int rng 3) (fun _ ->
              Test_util.Gen.random_xor rng ~num_vars:f.Cnf.Formula.num_vars)
        in
        let fresh = Sat.Bsat.enumerate ~limit (Cnf.Formula.add_xors f xors) in
        let inc = Sat.Bsat.Session.enumerate ~xors ~limit sess in
        if fresh.Sat.Bsat.exhausted <> inc.Sat.Bsat.exhausted then ok := false;
        if List.length fresh.Sat.Bsat.models <> List.length inc.Sat.Bsat.models
        then ok := false;
        (* the witness lists are canonical (hence comparable) exactly
           when the cell was enumerated completely *)
        if
          fresh.Sat.Bsat.exhausted
          && List.map Cnf.Model.key fresh.Sat.Bsat.models
             <> List.map Cnf.Model.key inc.Sat.Bsat.models
        then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* End-to-end differential: ApproxMC and UniGen give bit-identical
   results with and without incremental sessions *)

let test_approxmc_incremental_equal () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let f =
        Test_util.Gen.random_formula_with_xors rng ~num_vars:10 ~num_clauses:20
          ~num_xors:2 ~width:3
      in
      let run incremental =
        match
          Counting.Approxmc.count ~incremental ~iterations:5
            ~rng:(Rng.create (seed + 1)) ~epsilon:0.8 ~delta:0.2 f
        with
        | Ok r -> Some r.Counting.Approxmc.estimate
        | Error _ -> None
      in
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "seed %d" seed)
        (run false) (run true))
    [ 3; 17; 42; 101 ]

let test_unigen_incremental_equal () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let f =
        Test_util.Gen.random_formula_with_xors rng ~num_vars:12 ~num_clauses:18
          ~num_xors:0 ~width:3
      in
      let run incremental =
        match
          Sampling.Unigen.prepare ~incremental ~count_iterations:5
            ~rng:(Rng.create (seed + 1)) ~epsilon:6.0 f
        with
        | Error _ -> [ "<prepare-fail>" ]
        | Ok p ->
            Sampling.Unigen.sample_batch ~max_attempts:10 ~seed:99 p 10
            |> Array.to_list
            |> List.map (function
                 | Ok m -> Cnf.Model.key m
                 | Error _ -> "<fail>")
      in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d" seed)
        (run false) (run true))
    [ 5; 23; 77 ]

(* ------------------------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_assumptions_agree;
      prop_pop_restores;
      prop_blocking_survives_swaps;
      prop_session_matches_fresh;
    ]

let () =
  Alcotest.run "session"
    [
      ( "groups",
        [
          Alcotest.test_case "failed assumptions" `Quick test_failed_assumptions;
          Alcotest.test_case "pop rescinds group unsat" `Quick
            test_pop_rescinds_group_unsat;
          Alcotest.test_case "base unit shadowed by group" `Quick
            test_base_unit_shadowed_by_group;
        ] );
      ("properties", qcheck_cases);
      ( "differential",
        [
          Alcotest.test_case "approxmc incremental = fresh" `Quick
            test_approxmc_incremental_equal;
          Alcotest.test_case "unigen incremental = fresh" `Quick
            test_unigen_incremental_equal;
        ] );
    ]

(* Durable blob store: round trips, corruption quarantine, the embedded
   key check, LRU-by-mtime budget enforcement, and the crash-safe write
   path. All tests run against throwaway directories under the system
   temp dir. *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_tmpdir f =
  let dir = Filename.temp_file "unigen_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let quarantined dir =
  let qdir = Filename.concat dir "quarantine" in
  if Sys.file_exists qdir then Array.length (Sys.readdir qdir) else 0

let counter_value name =
  match List.assoc_opt name (Obs.Metrics.snapshot ()).Obs.Metrics.counters with
  | Some v -> v
  | None -> 0

let no_staging_residue label dir =
  Array.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: no staging residue: %s" label name)
        false
        (Filename.check_suffix name ".tmp"))
    (Sys.readdir dir)

let test_round_trip () =
  with_tmpdir @@ fun dir ->
  let t = Store.create ~dir () in
  Alcotest.(check (option string)) "absent" None (Store.find t ~key:"k");
  Alcotest.(check bool) "absent mem" false (Store.mem t ~key:"k");
  Store.put t ~key:"k" "payload-bytes";
  Alcotest.(check bool) "mem after put" true (Store.mem t ~key:"k");
  Alcotest.(check (option string)) "find after put" (Some "payload-bytes")
    (Store.find t ~key:"k");
  Alcotest.(check int) "one live entry" 1 (Store.length t);
  Alcotest.(check bool) "bytes accounted" true (Store.total_bytes t > 0);
  (* payloads are opaque bytes: newlines, NULs, header look-alikes *)
  let hostile = "unigen-store-v1\n\x00\nbinary\n42\n" in
  Store.put t ~key:"k" hostile;
  Alcotest.(check (option string)) "overwrite + hostile payload"
    (Some hostile) (Store.find t ~key:"k");
  Alcotest.(check int) "overwrite keeps one entry" 1 (Store.length t);
  (* the empty payload is a valid entry, distinct from absence *)
  Store.put t ~key:"empty" "";
  Alcotest.(check (option string)) "empty payload round-trips" (Some "")
    (Store.find t ~key:"empty");
  Alcotest.(check bool) "remove" true (Store.remove t ~key:"k");
  Alcotest.(check bool) "remove is once" false (Store.remove t ~key:"k");
  Alcotest.(check (option string)) "gone" None (Store.find t ~key:"k");
  (* distinct keys must not collide on disk *)
  Store.put t ~key:"a" "A";
  Store.put t ~key:"b" "B";
  Alcotest.(check (option string)) "key a" (Some "A") (Store.find t ~key:"a");
  Alcotest.(check (option string)) "key b" (Some "B") (Store.find t ~key:"b");
  (* no .tmp staging file survives a completed write *)
  no_staging_residue "round trip" dir

let test_invalid_arguments () =
  with_tmpdir @@ fun dir ->
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Store.create: budget_bytes must be >= 0") (fun () ->
      ignore (Store.create ~budget_bytes:(-1) ~dir () : Store.t));
  let t = Store.create ~dir () in
  Alcotest.check_raises "newline in key"
    (Invalid_argument "Store.put: key must not contain newlines") (fun () ->
      Store.put t ~key:"bad\nkey" "p")

(* Every corruption mode must read as a miss, move the evidence into
   quarantine/, and leave the other entries untouched. *)
let test_corruption_quarantine () =
  let corrupt label mutate =
    with_tmpdir @@ fun dir ->
    let t = Store.create ~dir () in
    Store.put t ~key:"victim" "precious-payload";
    Store.put t ~key:"bystander" "other";
    let path = Store.entry_path t ~key:"victim" in
    Store.atomic_write ~dir ~path (mutate (read_file path));
    Alcotest.(check (option string))
      (label ^ ": reads as a miss")
      None
      (Store.find t ~key:"victim");
    Alcotest.(check bool)
      (label ^ ": entry file gone")
      false
      (Sys.file_exists path);
    Alcotest.(check int) (label ^ ": evidence kept") 1 (quarantined dir);
    Alcotest.(check (option string))
      (label ^ ": bystander intact")
      (Some "other")
      (Store.find t ~key:"bystander")
  in
  corrupt "flipped payload byte" (fun raw ->
      let b = Bytes.of_string raw in
      let i = Bytes.length b - 1 in
      Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
      Bytes.to_string b);
  corrupt "truncated file" (fun raw ->
      String.sub raw 0 (String.length raw - 5));
  corrupt "bad magic" (fun raw -> "unigen-store-v0" ^ String.sub raw 15 (String.length raw - 15));
  corrupt "garbage" (fun _ -> "not a store entry at all")

let test_embedded_key_mismatch () =
  (* a verifiable-but-misplaced file (filename hash collision, manual
     shuffling) must be rejected by the embedded key, not served *)
  with_tmpdir @@ fun dir ->
  let t = Store.create ~dir () in
  Store.put t ~key:"alpha" "alpha-payload";
  let stray = read_file (Store.entry_path t ~key:"alpha") in
  Store.atomic_write ~dir ~path:(Store.entry_path t ~key:"beta") stray;
  Alcotest.(check (option string)) "misplaced entry is a miss" None
    (Store.find t ~key:"beta");
  Alcotest.(check int) "misplaced entry quarantined" 1 (quarantined dir);
  Alcotest.(check (option string)) "original still served"
    (Some "alpha-payload")
    (Store.find t ~key:"alpha")

let test_explicit_quarantine () =
  with_tmpdir @@ fun dir ->
  let t = Store.create ~dir () in
  Store.put t ~key:"k" "payload";
  Store.quarantine t ~key:"k" ~reason:"codec version mismatch";
  Alcotest.(check bool) "entry gone" false (Store.mem t ~key:"k");
  Alcotest.(check int) "moved to quarantine" 1 (quarantined dir);
  (* idempotent on an absent entry *)
  Store.quarantine t ~key:"k" ~reason:"again";
  Alcotest.(check int) "no duplicate evidence" 1 (quarantined dir)

let test_budget_eviction () =
  with_tmpdir @@ fun dir ->
  let payload = String.make 1_000 'x' in
  (* measure one entry's on-disk size, then budget for two and a half *)
  let probe = Store.create ~dir () in
  Store.put probe ~key:"probe" payload;
  let entry_bytes = Store.total_bytes probe in
  ignore (Store.remove probe ~key:"probe" : bool);
  let t = Store.create ~budget_bytes:(2 * entry_bytes + (entry_bytes / 2)) ~dir () in
  let backdate key mtime =
    Unix.utimes (Store.entry_path t ~key) mtime mtime
  in
  Store.put t ~key:"a" payload;
  backdate "a" 1_000.0;
  Store.put t ~key:"b" payload;
  backdate "b" 2_000.0;
  Store.put t ~key:"c" payload;
  (* three entries exceed the budget: the stalest goes, the entry just
     written is never its own victim *)
  Alcotest.(check bool) "stalest evicted" false (Store.mem t ~key:"a");
  Alcotest.(check bool) "middle kept" true (Store.mem t ~key:"b");
  Alcotest.(check bool) "just-written kept" true (Store.mem t ~key:"c");
  Alcotest.(check bool) "back under budget" true
    (Store.total_bytes t <= Store.budget_bytes t);
  (* a find refreshes the LRU clock: the read entry outlives a staler one *)
  backdate "b" 1_000.0;
  backdate "c" 2_000.0;
  ignore (Store.find t ~key:"b" : string option);
  Store.put t ~key:"d" payload;
  Alcotest.(check bool) "unread entry evicted" false (Store.mem t ~key:"c");
  Alcotest.(check bool) "read entry survives" true (Store.mem t ~key:"b");
  Alcotest.(check bool) "new entry kept" true (Store.mem t ~key:"d")

let test_oversized_entry_kept () =
  with_tmpdir @@ fun dir ->
  let t = Store.create ~budget_bytes:10 ~dir () in
  Store.put t ~key:"big" (String.make 1_000 'y');
  Alcotest.(check bool) "one oversized entry is kept" true
    (Store.mem t ~key:"big");
  Store.put t ~key:"bigger" (String.make 1_000 'z');
  Alcotest.(check bool) "older oversized entry evicted" false
    (Store.mem t ~key:"big");
  Alcotest.(check (option string)) "newest always wins"
    (Some (String.make 1_000 'z'))
    (Store.find t ~key:"bigger")

let test_atomic_write () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "sidecar.bin" in
  Store.atomic_write ~dir ~path "first";
  Alcotest.(check string) "contents land" "first" (read_file path);
  Store.atomic_write ~dir ~path "second";
  Alcotest.(check string) "overwrite is atomic" "second" (read_file path);
  no_staging_residue "atomic write" dir

(* Spill-write failures must degrade to RAM-only, never raise: the
   daemon holds a computed response when the spill runs, and an opt-in
   durability tier crashing on a sick disk would lose it. *)
let test_write_failure_degrades () =
  with_tmpdir @@ fun dir ->
  let sub = Filename.concat dir "spill" in
  let t = Store.create ~dir:sub () in
  Store.put t ~key:"k" "payload";
  (* the directory vanishing underneath the store stands in for any
     write-path I/O failure (ENOSPC, EACCES, rename failure) *)
  rm_rf sub;
  Obs.Metrics.enable ();
  Fun.protect ~finally:Obs.Metrics.disable @@ fun () ->
  let before = counter_value "store.write_error" in
  Store.put t ~key:"k" "payload-after-disk-vanished";
  Alcotest.(check int) "write error counted" (before + 1)
    (counter_value "store.write_error");
  Alcotest.(check (option string)) "degraded entry reads as a miss" None
    (Store.find t ~key:"k")

(* A rename that cannot land (here: a directory squatting on the entry
   path) must not raise either, and must clean up its staging file. *)
let test_failed_write_cleans_staging () =
  with_tmpdir @@ fun dir ->
  let t = Store.create ~dir () in
  Unix.mkdir (Store.entry_path t ~key:"k") 0o700;
  Store.put t ~key:"k" "payload";
  no_staging_residue "failed write" dir

let test_quarantine_cap () =
  with_tmpdir @@ fun dir ->
  let t = Store.create ~dir () in
  (* systematic corruption — e.g. codec version skew quarantining every
     old spill — must keep only bounded evidence *)
  for i = 1 to Store.quarantine_keep + 5 do
    let key = Printf.sprintf "k%d" i in
    Store.put t ~key "payload";
    Store.quarantine t ~key ~reason:"version skew"
  done;
  Alcotest.(check int) "evidence bounded" Store.quarantine_keep
    (quarantined dir)

let test_stale_tmp_sweep () =
  with_tmpdir @@ fun dir ->
  (* a writer killed mid-spill leaves its private staging file behind;
     reopening the store sweeps old ones but keeps recent ones, which
     may belong to an in-flight fleet peer *)
  let stale = Filename.concat dir "dead.prep.12345.tmp" in
  let fresh = Filename.concat dir "live.prep.67890.tmp" in
  let plant path =
    let oc = open_out_bin path in
    output_string oc "partial";
    close_out oc
  in
  plant stale;
  plant fresh;
  let old = Unix.gettimeofday () -. 7200. in
  Unix.utimes stale old old;
  let (_ : Store.t) = Store.create ~dir () in
  Alcotest.(check bool) "stale staging file swept" false
    (Sys.file_exists stale);
  Alcotest.(check bool) "recent staging file kept" true
    (Sys.file_exists fresh)

let test_reopen_persists () =
  (* the whole point of the tier: a fresh store instance over the same
     directory — a restarted daemon — still serves the entry *)
  with_tmpdir @@ fun dir ->
  let t = Store.create ~dir () in
  Store.put t ~key:"k" "survives-restart";
  let t' = Store.create ~dir () in
  Alcotest.(check (option string)) "entry outlives the instance"
    (Some "survives-restart")
    (Store.find t' ~key:"k");
  Alcotest.(check int) "length agrees" 1 (Store.length t')

let () =
  Alcotest.run "store"
    [
      ( "store",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
          Alcotest.test_case "corruption quarantine" `Quick
            test_corruption_quarantine;
          Alcotest.test_case "embedded key mismatch" `Quick
            test_embedded_key_mismatch;
          Alcotest.test_case "explicit quarantine" `Quick
            test_explicit_quarantine;
          Alcotest.test_case "budget eviction" `Quick test_budget_eviction;
          Alcotest.test_case "oversized entry kept" `Quick
            test_oversized_entry_kept;
          Alcotest.test_case "atomic write" `Quick test_atomic_write;
          Alcotest.test_case "write failure degrades" `Quick
            test_write_failure_degrades;
          Alcotest.test_case "failed write cleans staging" `Quick
            test_failed_write_cleans_staging;
          Alcotest.test_case "quarantine cap" `Quick test_quarantine_cap;
          Alcotest.test_case "stale tmp sweep" `Quick test_stale_tmp_sweep;
          Alcotest.test_case "reopen persists" `Quick test_reopen_persists;
        ] );
    ]

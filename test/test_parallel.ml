(* Tests for the Domain-based parallel sampling engine: the worker
   pool itself (ordering, cancellation, graceful shutdown), the
   deterministic seeding discipline (jobs-count invariance at every
   layer), and the statistical guarantees of the parallel path.

   Every parallel case here runs with a pool of 2 workers, so plain
   `dune runtest` exercises the Domain path on every run. *)

let clause = Cnf.Clause.of_dimacs

(* ------------------------------------------------------------------ *)
(* Domain_pool *)

let test_pool_map_order () =
  Parallel.Domain_pool.with_pool ~jobs:2 (fun pool ->
      let items = Array.init 200 Fun.id in
      let out = Parallel.Domain_pool.map pool (fun x -> x * x) items in
      Alcotest.(check (array int))
        "squares in submission order"
        (Array.map (fun x -> x * x) items)
        out)

let test_pool_reuse_across_batches () =
  Parallel.Domain_pool.with_pool ~jobs:2 (fun pool ->
      for round = 1 to 5 do
        let out = Parallel.Domain_pool.map pool (fun x -> x + round) [| 1; 2; 3 |] in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          [| 1 + round; 2 + round; 3 + round |]
          out
      done)

let test_pool_jobs1_inline () =
  Parallel.Domain_pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "size" 1 (Parallel.Domain_pool.size pool);
      let out = Parallel.Domain_pool.map pool succ [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "inline execution" [| 2; 3; 4 |] out)

let test_pool_empty_batch () =
  Parallel.Domain_pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check (array int)) "empty" [||]
        (Parallel.Domain_pool.map pool Fun.id [||]))

let test_pool_rejects_bad_jobs () =
  Alcotest.(check bool) "jobs 0 rejected" true
    (try
       ignore (Parallel.Domain_pool.create ~jobs:0);
       false
     with Invalid_argument _ -> true)

exception Boom of int

let test_pool_exception_graceful_shutdown () =
  Parallel.Domain_pool.with_pool ~jobs:2 (fun pool ->
      let ran = Array.make 64 false in
      let work i =
        if i = 5 then raise (Boom i);
        (* slow enough that the cancellation flag set by item 5's
           failure is observed long before the tail of the batch *)
        Unix.sleepf 0.001;
        ran.(i) <- true;
        i
      in
      (match Parallel.Domain_pool.map pool work (Array.init 64 Fun.id) with
      | _ -> Alcotest.fail "expected the item exception to propagate"
      | exception Boom i -> Alcotest.(check int) "failing item's exception" 5 i);
      (* graceful: unstarted items of the failed batch were cancelled *)
      let executed = Array.fold_left (fun n b -> if b then n + 1 else n) 0 ran in
      Alcotest.(check bool)
        (Printf.sprintf "batch tail cancelled (%d/63 ran)" executed)
        true (executed < 63);
      (* graceful: the pool survives and runs further batches *)
      let out = Parallel.Domain_pool.map pool succ [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool alive after exception" [| 2; 3; 4 |] out)

let test_pool_shutdown_idempotent () =
  let pool = Parallel.Domain_pool.create ~jobs:2 in
  ignore (Parallel.Domain_pool.map pool succ [| 1 |]);
  Parallel.Domain_pool.shutdown pool;
  Parallel.Domain_pool.shutdown pool;
  Alcotest.(check bool) "map after shutdown rejected" true
    (try
       ignore (Parallel.Domain_pool.map pool succ [| 1 |]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Executor: the async counterpart of the pool, driving the daemon's
   parallel path. Completions must surface through the self-pipe and
   run their finish thunks on the owning domain, exceptions included. *)

let test_executor_basic_completion () =
  let ex = Parallel.Executor.create ~workers:2 in
  Fun.protect ~finally:(fun () -> Parallel.Executor.shutdown ex) @@ fun () ->
  Alcotest.(check int) "workers" 2 (Parallel.Executor.workers ex);
  let n = 20 in
  let results = Array.make n (-1) in
  let done_count = ref 0 in
  for i = 0 to n - 1 do
    Parallel.Executor.submit ex
      ~work:(fun () -> i * i)
      ~finish:(fun r ->
        (match r with
        | Ok v -> results.(i) <- v
        | Error _ -> Alcotest.fail "unexpected job failure");
        incr done_count)
  done;
  (* drive completions the way the daemon does: select on the notify
     pipe, then poll on the owner *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  while !done_count < n && Unix.gettimeofday () < deadline do
    (match
       Unix.select [ Parallel.Executor.notify_fd ex ] [] [] 0.2
     with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | _ -> ());
    ignore (Parallel.Executor.poll ex : int)
  done;
  Alcotest.(check int) "all jobs completed" n !done_count;
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "job %d" i) (i * i) v)
    results

let test_executor_captures_exceptions () =
  let ex = Parallel.Executor.create ~workers:2 in
  Fun.protect ~finally:(fun () -> Parallel.Executor.shutdown ex) @@ fun () ->
  let outcomes = ref [] in
  for i = 0 to 7 do
    Parallel.Executor.submit ex
      ~work:(fun () -> if i mod 2 = 0 then raise (Boom i) else i)
      ~finish:(fun r -> outcomes := (i, r) :: !outcomes)
  done;
  let deadline = Unix.gettimeofday () +. 10.0 in
  while List.length !outcomes < 8 && Unix.gettimeofday () < deadline do
    Parallel.Executor.wait ~timeout_s:0.2 ex;
    ignore (Parallel.Executor.poll ex : int)
  done;
  Alcotest.(check int) "all finished" 8 (List.length !outcomes);
  List.iter
    (fun (i, r) ->
      match r with
      | Ok v ->
          Alcotest.(check bool) "odd jobs succeed" true (i mod 2 = 1);
          Alcotest.(check int) "value" i v
      | Error (Boom j, _) ->
          Alcotest.(check bool) "even jobs fail" true (i mod 2 = 0);
          Alcotest.(check int) "own exception" i j
      | Error _ -> Alcotest.fail "wrong exception captured")
    !outcomes

let test_executor_shutdown_flushes () =
  (* shutdown must finish queued jobs and run their thunks — nothing
     is lost or duplicated *)
  let ex = Parallel.Executor.create ~workers:1 in
  let seen = ref 0 in
  for _ = 1 to 10 do
    Parallel.Executor.submit ex
      ~work:(fun () -> Unix.sleepf 0.002)
      ~finish:(fun _ -> incr seen)
  done;
  Parallel.Executor.shutdown ex;
  Alcotest.(check int) "every finish thunk ran" 10 !seen;
  Parallel.Executor.shutdown ex;
  Alcotest.(check int) "shutdown idempotent" 10 !seen;
  Alcotest.(check bool) "submit after shutdown rejected" true
    (try
       Parallel.Executor.submit ex ~work:(fun () -> ()) ~finish:ignore;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Deterministic seeding: jobs-count invariance *)

let prepare ?(seed = 42) f =
  match
    Sampling.Unigen.prepare ~count_iterations:7 ~rng:(Rng.create seed)
      ~epsilon:6.0 f
  with
  | Ok p -> p
  | Error _ -> Alcotest.fail "prepare failed"

let outcome_key = function
  | Ok m -> Cnf.Model.key m
  | Error Sampling.Sampler.Cell_failure -> "<cell_failure>"
  | Error Sampling.Sampler.Timed_out -> "<timeout>"
  | Error Sampling.Sampler.Unsat -> "<unsat>"

let test_batch_determinism_across_jobs () =
  (* 2^9 = 512 witnesses: the hashed path, where each sample draws its
     own hashes — the regime the determinism discipline must survive *)
  let f = Cnf.Formula.create ~num_vars:9 [] in
  let p = prepare f in
  let n = 40 in
  let run jobs =
    Array.map outcome_key
      (Sampling.Unigen.sample_batch ~max_attempts:20 ~jobs ~seed:99 p n)
  in
  let serial = run 1 in
  Alcotest.(check (array string)) "jobs 2 = jobs 1" serial (run 2);
  Alcotest.(check (array string)) "jobs 4 = jobs 1" serial (run 4);
  (* every sample came from somewhere real *)
  let produced = Array.fold_left (fun n k -> if k.[0] <> '<' then n + 1 else n) 0 serial in
  Alcotest.(check bool) (Printf.sprintf "produced %d/%d" produced n) true
    (produced >= n / 2);
  (* stats were merged once per batch *)
  let st = Sampling.Unigen.stats p in
  Alcotest.(check bool) "stats merged" true
    (st.Sampling.Sampler.samples_requested >= 3 * n)

let test_batch_determinism_easy_case () =
  let f = Cnf.Formula.create ~num_vars:4 [ clause [ 1; 2 ] ] in
  let p = prepare f in
  let run jobs =
    Array.map outcome_key
      (Sampling.Unigen.sample_batch ~jobs ~seed:123 p 32)
  in
  Alcotest.(check (array string)) "easy case jobs 2 = jobs 1" (run 1) (run 2)

let test_batch_reuses_caller_pool () =
  let f = Cnf.Formula.create ~num_vars:9 [] in
  let p = prepare f in
  let serial =
    Array.map outcome_key (Sampling.Unigen.sample_batch ~jobs:1 ~seed:7 p 20)
  in
  Parallel.Domain_pool.with_pool ~jobs:2 (fun pool ->
      let pooled =
        Array.map outcome_key (Sampling.Unigen.sample_batch ~pool ~seed:7 p 20)
      in
      Alcotest.(check (array string)) "caller pool = jobs 1" serial pooled)

let test_batch_stream_independence_of_batch_size () =
  (* sample i depends on (seed, i) only: a prefix of a longer batch
     equals the shorter batch *)
  let f = Cnf.Formula.create ~num_vars:9 [] in
  let p = prepare f in
  let short =
    Array.map outcome_key (Sampling.Unigen.sample_batch ~jobs:2 ~seed:5 p 10)
  in
  let long =
    Array.map outcome_key (Sampling.Unigen.sample_batch ~jobs:2 ~seed:5 p 25)
  in
  Alcotest.(check (array string)) "prefix stable" short (Array.sub long 0 10)

let test_approxmc_jobs_invariance () =
  let f = Cnf.Formula.create ~num_vars:12 [ clause [ 1; 2; 3 ] ] in
  let count jobs =
    match
      Counting.Approxmc.count ~iterations:9 ~jobs ~rng:(Rng.create 5)
        ~epsilon:0.8 ~delta:0.8 f
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "count failed"
  in
  let r1 = count 1 in
  let r2 = count 2 in
  let r4 = count 4 in
  Alcotest.(check (float 0.0)) "estimate jobs 2 = jobs 1" r1.Counting.Approxmc.estimate
    r2.Counting.Approxmc.estimate;
  Alcotest.(check (float 0.0)) "estimate jobs 4 = jobs 1" r1.Counting.Approxmc.estimate
    r4.Counting.Approxmc.estimate;
  Alcotest.(check int) "core iterations equal" r1.Counting.Approxmc.core_iterations
    r2.Counting.Approxmc.core_iterations

let test_prepare_with_parallel_counting () =
  (* prepare ~jobs parallelises the ApproxMC call; the derived hash
     window must be jobs-invariant *)
  let f = Cnf.Formula.create ~num_vars:10 [ clause [ 1; 2 ] ] in
  let prep jobs =
    match
      Sampling.Unigen.prepare ~count_iterations:7 ~jobs ~rng:(Rng.create 11)
        ~epsilon:6.0 f
    with
    | Ok p -> p
    | Error _ -> Alcotest.fail "prepare failed"
  in
  let p1 = prep 1 and p2 = prep 2 in
  Alcotest.(check (option (pair int int))) "q range jobs 2 = jobs 1"
    (Sampling.Unigen.q_range p1) (Sampling.Unigen.q_range p2);
  Alcotest.(check (float 0.0)) "count estimate equal"
    (Sampling.Unigen.count_estimate p1)
    (Sampling.Unigen.count_estimate p2)

(* ------------------------------------------------------------------ *)
(* Statistics on the parallel path *)

let test_parallel_path_uniformity () =
  (* chi-square uniformity of the parallel sampler against the US
     exact sampler's support: every witness the parallel path emits
     must be one US enumerates, and the frequencies must be compatible
     with the uniform distribution over that support *)
  let f = Cnf.Formula.create ~num_vars:7 [ clause [ 1; 2 ] ] in
  let us = Sampling.Us.create f in
  let rf = Sampling.Us.size us in
  Alcotest.(check int) "support size" 96 rf;
  let support = Hashtbl.create rf in
  (* US's witnesses are exactly the BSAT enumeration; rebuild the key
     set through brute force for independence from Us internals *)
  List.iter
    (fun m -> Hashtbl.replace support (Cnf.Model.key m) ())
    (Sat.Brute.solutions f);
  let p = prepare f in
  let n = 6000 in
  let outcomes =
    Parallel.Domain_pool.with_pool ~jobs:2 (fun pool ->
        Sampling.Unigen.sample_batch ~max_attempts:20 ~pool ~seed:17 p n)
  in
  let keys =
    Array.fold_left
      (fun acc o -> match o with Ok m -> Cnf.Model.key m :: acc | Error _ -> acc)
      [] outcomes
  in
  let drawn = List.length keys in
  Alcotest.(check bool) (Printf.sprintf "drawn %d/%d" drawn n) true
    (drawn > n * 9 / 10);
  List.iter
    (fun k ->
      if not (Hashtbl.mem support k) then
        Alcotest.fail "parallel sample outside the exact support")
    keys;
  let h = Sampling.Stats.histogram_of_keys keys in
  Alcotest.(check int) "all witnesses reached" rf (Hashtbl.length h);
  let pvalue =
    Sampling.Stats.uniformity_pvalue ~num_outcomes:rf ~num_samples:drawn h
  in
  Alcotest.(check bool) (Printf.sprintf "chi2 p-value %.4f" pvalue) true
    (pvalue > 1e-4);
  let tv =
    Sampling.Stats.total_variation_from_uniform ~num_outcomes:rf
      ~num_samples:drawn h
  in
  Alcotest.(check bool) (Printf.sprintf "TV %.3f" tv) true (tv < 0.15)

let () =
  Alcotest.run "parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "reuse across batches" `Quick test_pool_reuse_across_batches;
          Alcotest.test_case "jobs 1 inline" `Quick test_pool_jobs1_inline;
          Alcotest.test_case "empty batch" `Quick test_pool_empty_batch;
          Alcotest.test_case "rejects jobs 0" `Quick test_pool_rejects_bad_jobs;
          Alcotest.test_case "exception graceful shutdown" `Quick
            test_pool_exception_graceful_shutdown;
          Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
        ] );
      ( "executor",
        [
          Alcotest.test_case "basic completion" `Quick test_executor_basic_completion;
          Alcotest.test_case "captures exceptions" `Quick
            test_executor_captures_exceptions;
          Alcotest.test_case "shutdown flushes" `Quick test_executor_shutdown_flushes;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "batch jobs invariance" `Quick
            test_batch_determinism_across_jobs;
          Alcotest.test_case "easy case" `Quick test_batch_determinism_easy_case;
          Alcotest.test_case "caller pool" `Quick test_batch_reuses_caller_pool;
          Alcotest.test_case "prefix stability" `Quick
            test_batch_stream_independence_of_batch_size;
          Alcotest.test_case "approxmc jobs invariance" `Quick
            test_approxmc_jobs_invariance;
          Alcotest.test_case "parallel prepare" `Quick
            test_prepare_with_parallel_counting;
        ] );
      ( "uniformity",
        [
          Alcotest.test_case "parallel path chi-square vs US" `Slow
            test_parallel_path_uniformity;
        ] );
    ]

(* Minimal JSON parser for validating the files our tools emit
   (Chrome traces, metrics reports, bench summaries). Strict enough to
   catch malformed output — unterminated strings, trailing commas,
   bare values — without pulling in a JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail "expected '%c' at offset %d, got '%c'" c st.pos c'
  | None -> fail "expected '%c' at offset %d, got end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "bad literal at offset %d" st.pos

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> fail "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.src then fail "bad \\u escape";
                let hex = String.sub st.src st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape %S" hex
                in
                (* keep it simple: BMP code points as raw bytes is enough
                   for validating our own ASCII-escaped output *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
            | c -> fail "bad escape '\\%c'" c);
            go ())
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let numchar c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when numchar c -> true | _ -> false do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "bad number %S at offset %d" s start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}' at offset %d" st.pos
        in
        members []
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' at offset %d" st.pos
        in
        elements []
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then
    fail "trailing garbage at offset %d" st.pos;
  v

(* [mem key v]: does [key] occur as an object member anywhere in [v]? *)
let rec mem key = function
  | Obj fields ->
      List.exists (fun (k, v) -> k = key || mem key v) fields
  | List vs -> List.exists (mem key) vs
  | Null | Bool _ | Num _ | Str _ -> false

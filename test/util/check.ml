(* DRAT-checked solving shared by the test suites.

   Policy: an UNSAT verdict on an XOR-free formula is only trusted
   when it comes with a machine-checked RUP refutation, so a solver
   bug that answers UNSAT by accident cannot hide behind a test that
   merely expected UNSAT. XOR-bearing formulas are exempt (native XOR
   reasoning has no DRAT representation — see [Sat.Drat]). *)

let pure_cnf (f : Cnf.Formula.t) = Array.length f.xors = 0

let refutation_failure detail =
  failwith ("checked solve: UNSAT verdict not DRAT-certified: " ^ detail)

(* Same construction as [Sat.Solver.create], but with proof logging
   switched on before the clauses are loaded, so conflicts discovered
   while loading (e.g. contradictory units) are part of the log. *)
let logged_solver (f : Cnf.Formula.t) =
  let s = Sat.Solver.create_empty f.num_vars in
  Sat.Solver.enable_proof_logging s;
  Array.iter (fun c -> Sat.Solver.add_clause s (Array.to_list c)) f.clauses;
  s

let assert_refutable (f : Cnf.Formula.t) =
  let s = logged_solver f in
  (match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> ()
  | _ -> refutation_failure "certifying re-solve disagreed with UNSAT");
  if not (Sat.Drat.refutes f (Sat.Solver.proof s)) then
    refutation_failure "proof log fails RUP checking"

(* Drop-in replacement for [Solver.create] + [Solver.solve]. On a
   pure-CNF formula, an [Unsat] answer is certified before being
   returned: directly when solving without assumptions, and via a
   fresh certifying solve of formula + assumption units otherwise (an
   assumption-conditional UNSAT proves nothing about [f] alone, and
   its log need not end in the empty clause). *)
let checked_solve ?(assumptions = []) (f : Cnf.Formula.t) =
  if pure_cnf f && assumptions = [] then begin
    let s = logged_solver f in
    let r = Sat.Solver.solve s in
    (match r with
    | Sat.Solver.Unsat ->
        if not (Sat.Drat.refutes f (Sat.Solver.proof s)) then
          refutation_failure "proof log fails RUP checking"
    | _ -> ());
    (r, s)
  end
  else begin
    let s = Sat.Solver.create f in
    let r = Sat.Solver.solve ~assumptions s in
    (match r with
    | Sat.Solver.Unsat when pure_cnf f ->
        assert_refutable
          (Cnf.Formula.add_clauses f
             (List.map (fun l -> Cnf.Clause.of_list [ l ]) assumptions))
    | _ -> ());
    (r, s)
  end

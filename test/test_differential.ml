(* Randomised differential tests: cross-check the CDCL solver, the
   bounded enumerator, the exact counter and the parallel batch engine
   against the brute-force oracle on random small CNF+XOR formulas.
   QCheck2 shrinks any failing (seed, size) specification to a minimal
   reproduction. *)

let build = Test_util.Gen.build_spec

(* CDCL verdict matches brute force AND a SAT verdict comes with a
   model that actually satisfies the formula (the existing sat suite
   checks verdicts only). *)
let prop_solver_verdict_and_model =
  QCheck2.Test.make ~count:300
    ~name:"cdcl verdict = brute verdict, and SAT models satisfy"
    Test_util.Gen.formula_spec
    (fun spec ->
      let f = build spec in
      (* checked_solve additionally certifies pure-CNF UNSAT verdicts
         with a RUP refutation *)
      match Test_util.Check.checked_solve f with
      | Sat.Solver.Sat, s ->
          Sat.Brute.is_sat f && Cnf.Model.satisfies f (Sat.Solver.model s)
      | Sat.Solver.Unsat, _ -> not (Sat.Brute.is_sat f)
      | Sat.Solver.Unknown, _ -> false)

(* Exact counting under assumption literals vs brute-force filtering. *)
let prop_count_restricted_matches_brute =
  QCheck2.Test.make ~count:150
    ~name:"exact count_restricted = brute filtered count"
    QCheck2.Gen.(pair Test_util.Gen.formula_spec (int_bound 100000))
    (fun (spec, aux) ->
      let f = build spec in
      let nv = f.Cnf.Formula.num_vars in
      let v1 = 1 + (aux mod nv) in
      let v2 = 1 + (aux / nv mod nv) in
      let assumptions =
        if v1 = v2 then [ Cnf.Lit.make v1 (aux land 1 = 0) ]
        else
          [ Cnf.Lit.make v1 (aux land 1 = 0); Cnf.Lit.make v2 (aux land 2 = 0) ]
      in
      let counted = Counting.Exact_counter.count_restricted f assumptions in
      let expected =
        List.length
          (List.filter
             (fun m ->
               List.for_all
                 (fun lit ->
                   Cnf.Model.value m (Cnf.Lit.var lit) = Cnf.Lit.sign lit)
                 assumptions)
             (Sat.Brute.solutions f))
      in
      counted = expected)

(* Bounded enumeration's count_upto caps exactly at the limit. *)
let prop_count_upto_caps_at_limit =
  QCheck2.Test.make ~count:150 ~name:"bsat count_upto = min(brute count, limit)"
    QCheck2.Gen.(pair Test_util.Gen.formula_spec (int_range 1 40))
    (fun (spec, limit) ->
      let f = build spec in
      Sat.Bsat.count_upto ~limit f = min (Sat.Brute.count f) limit)

(* The parallel batch engine is execution-order independent: jobs:1
   and jobs:2 produce the same outcome sequence on arbitrary (easy and
   hashed case) satisfiable formulas. *)
let prop_batch_jobs_differential =
  QCheck2.Test.make ~count:20 ~name:"sample_batch jobs:1 = jobs:2"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 3 7))
    (fun (seed, num_vars) ->
      (* free formula over num_vars variables: always satisfiable;
         num_vars >= 7 exercises the hashed path (2^7 > hiThresh) *)
      let f = Cnf.Formula.create ~num_vars [] in
      match
        Sampling.Unigen.prepare ~count_iterations:5 ~rng:(Rng.create seed)
          ~epsilon:6.0 f
      with
      | Error _ -> false
      | Ok p ->
          let run jobs =
            Array.map
              (function Ok m -> Cnf.Model.key m | Error _ -> "<fail>")
              (Sampling.Unigen.sample_batch ~max_attempts:10 ~jobs ~seed p 6)
          in
          run 1 = run 2)

let () =
  Alcotest.run "differential"
    [
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_solver_verdict_and_model;
            prop_count_restricted_matches_brute;
            prop_count_upto_caps_at_limit;
            prop_batch_jobs_differential;
          ] );
    ]

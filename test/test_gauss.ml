(* Tests for the in-search Gauss-Jordan XOR engine: fixpoint
   equivalence against a from-scratch static RREF, matrix-state
   restoration across session push/pop, engine-differential
   enumeration, and the observability surface. *)

(* ------------------------------------------------------------------ *)
(* Static reference: the propagation closure of an XOR system plus a
   set of forced literals, computed by repeated substitute-and-RREF
   until no new unit appears. This is what the incremental matrix must
   agree with at every clean fixpoint. *)

let static_closure rows units =
  let tbl = Hashtbl.create 16 in
  let unsat = ref false in
  let learn v b =
    match Hashtbl.find_opt tbl v with
    | Some b' -> if b <> b' then unsat := true
    | None -> Hashtbl.replace tbl v b
  in
  List.iter (fun (v, b) -> learn v b) units;
  let changed = ref true in
  while !changed && not !unsat do
    changed := false;
    let substituted =
      List.map
        (fun (r : Cnf.Xor_clause.t) ->
          let rhs = ref r.Cnf.Xor_clause.rhs in
          let rem =
            List.filter
              (fun v ->
                match Hashtbl.find_opt tbl v with
                | Some b ->
                    if b then rhs := not !rhs;
                    false
                | None -> true)
              (Array.to_list r.Cnf.Xor_clause.vars)
          in
          Cnf.Xor_clause.make rem !rhs)
        rows
    in
    match Cnf.Xor_gauss.eliminate substituted with
    | Error `Unsat -> unsat := true
    | Ok r ->
        List.iter
          (fun (v, b) ->
            if not (Hashtbl.mem tbl v) then begin
              learn v b;
              changed := true
            end)
          r.Cnf.Xor_gauss.units
  done;
  (!unsat, tbl)

(* Variables assigned at level 0 in the live solver, as (var, value)
   pairs restricted to the original formula variables. *)
let solver_assigned view ~num_vars =
  let out = ref [] in
  for v = num_vars downto 1 do
    match view.Audit.State.assigns.(v) with
    | 0 -> ()
    | x -> out := (v, x = 1) :: !out
  done;
  !out

(* The incremental matrix, fed one forced literal at a time, reaches
   exactly the static-RREF closure of (rows + literals so far) after
   each addition: same forced variables, same values, same
   (in)consistency verdict. This is the fixpoint-equivalence property
   behind the [gauss-fixpoint] audit invariant. *)
let prop_fixpoint_matches_static_rref =
  QCheck2.Test.make ~count:400
    ~name:"incremental gauss propagation = from-scratch static RREF"
    ~print:(fun (seed, nv, nx) -> Printf.sprintf "seed=%d nv=%d nx=%d" seed nv nx)
    QCheck2.Gen.(tup3 (int_bound 1_000_000) (int_bound 9) (int_bound 5))
    (fun (seed, nv, nx) ->
      let num_vars = 2 + nv in
      let rng = Rng.create seed in
      let rows =
        List.init (1 + nx) (fun _ ->
            Test_util.Gen.random_xor rng ~num_vars)
      in
      let s = Sat.Solver.create_empty num_vars in
      List.iter (Sat.Solver.add_xor s) rows;
      let steps = 1 + Rng.int rng num_vars in
      let units = ref [] in
      let ok = ref true in
      (try
         for _ = 1 to steps do
           if Sat.Solver.okay s then begin
             let v = 1 + Rng.int rng num_vars in
             let b = Rng.bool rng in
             units := (v, b) :: !units;
             Sat.Solver.add_clause s [ Cnf.Lit.make v b ];
             let expect_unsat, closure = static_closure rows !units in
             if expect_unsat then begin
               if Sat.Solver.okay s then begin
                 ok := false;
                 QCheck2.Test.fail_report
                   "static closure unsat but solver still okay"
               end
             end
             else begin
               if not (Sat.Solver.okay s) then begin
                 ok := false;
                 QCheck2.Test.fail_report
                   "solver broken but static closure consistent"
               end;
               let view = Sat.Solver.audit_view s in
               let got = solver_assigned view ~num_vars in
               let want =
                 Hashtbl.fold (fun v b acc -> (v, b) :: acc) closure []
                 |> List.sort compare
               in
               if got <> want then begin
                 ok := false;
                 let show l =
                   String.concat " "
                     (List.map (fun (v, b) -> Printf.sprintf "%d=%b" v b) l)
                 in
                 QCheck2.Test.fail_reportf
                   "fixpoint mismatch: solver [%s] closure [%s] rows [%s]"
                   (show got) (show want)
                   (String.concat "; "
                      (List.map
                         (fun (r : Cnf.Xor_clause.t) ->
                           Printf.sprintf "%s=%b"
                             (String.concat "+"
                                (List.map string_of_int
                                   (Array.to_list r.Cnf.Xor_clause.vars)))
                             r.Cnf.Xor_clause.rhs)
                         rows))
               end
             end
           end
         done
       with QCheck2.Test.Test_fail _ as e -> raise e);
      !ok)

(* ------------------------------------------------------------------ *)
(* Session round-trip: pushing an XOR layer as a group and popping it
   restores the matrix state. Restoration is semantic, not bit-level:
   the rebuild interleaves row re-addition with the surviving level-0
   assignments in a different order than the original incremental
   construction, so it may settle on a different — but equivalent —
   Jordan basis of the same row space. The property therefore checks
   (1) the groups and row counts come back, (2) the row spaces are
   mutually implied, (3) a full invariant sweep accepts the rebuilt
   state (the [gauss-fixpoint] invariant certifies agreement with a
   from-scratch RREF), and (4) the solver answers like a fresh one.
   When no level-0 assignment exists on either side of the round-trip
   the rebuild is a pure replay and the dump must match bit-for-bit. *)

let dump_rows rows =
  Array.to_list rows
  |> List.map (fun (d : Sat.Gauss.row_dump) ->
         Cnf.Xor_clause.make (Array.to_list d.Sat.Gauss.d_vars) d.Sat.Gauss.d_rhs)

let same_row_space before after =
  List.length before = List.length after
  && List.for_all2
       (fun (gb, rb) (ga, ra) ->
         gb = ga
         && Array.length rb = Array.length ra
         && (let xb = dump_rows rb and xa = dump_rows ra in
             List.for_all (Cnf.Xor_gauss.implies xb) xa
             && List.for_all (Cnf.Xor_gauss.implies xa) xb))
       before after

let prop_pushpop_restores_matrix =
  QCheck2.Test.make ~count:300
    ~name:"group pop restores gauss matrix state"
    ~print:(fun ((s, nv, nc, nx), g) ->
      Printf.sprintf "spec=(%d,%d,%d,%d) gseed=%d" s nv nc nx g)
    QCheck2.Gen.(tup2 Test_util.Gen.formula_spec (int_bound 1_000_000))
    (fun (spec, gseed) ->
      let f = Test_util.Gen.build_spec spec in
      let nv = f.Cnf.Formula.num_vars in
      let s = Sat.Solver.create f in
      let trail_empty v = Array.length v.Audit.State.trail = 0 in
      let clean_before = trail_empty (Sat.Solver.audit_view s) in
      let before = Sat.Solver.gauss_dump s in
      let rng = Rng.create gseed in
      let layer =
        List.init (1 + Rng.int rng 3) (fun _ ->
            Test_util.Gen.random_xor rng ~num_vars:nv)
      in
      Sat.Solver.push_group s;
      List.iter (Sat.Solver.add_group_xor s) layer;
      Sat.Solver.pop_group s;
      let after = Sat.Solver.gauss_dump s in
      if not (same_row_space before after) then
        QCheck2.Test.fail_report "pop_group did not restore the matrix row space";
      (* the rebuilt state passes the full sanitizer, including the
         gauss-basic / gauss-watch / gauss-fixpoint invariants *)
      Sat.Solver.check_invariants s;
      if clean_before && trail_empty (Sat.Solver.audit_view s)
         && before <> after
      then
        QCheck2.Test.fail_report
          "assignment-free round-trip must restore the exact matrix dump";
      (* and the restored solver still answers like a fresh one *)
      let fresh = Sat.Solver.create f in
      Sat.Solver.solve s = Sat.Solver.solve fresh)

(* ------------------------------------------------------------------ *)
(* Engine differential: enumeration outcomes are bit-identical between
   the Gauss engine and the static-RREF + 2-watch reference, and both
   match brute force. *)

let prop_gauss_vs_2watch_enumeration =
  QCheck2.Test.make ~count:300
    ~name:"bsat enumerate: gauss engine = 2-watch engine = brute force"
    ~print:(fun (s, nv, nc, nx) ->
      Printf.sprintf "spec=(%d,%d,%d,%d)" s nv nc nx)
    Test_util.Gen.formula_spec
    (fun spec ->
      let f = Test_util.Gen.build_spec spec in
      let limit = 64 in
      let keys out =
        List.map Cnf.Model.key out.Sat.Bsat.models
      in
      let g = Sat.Bsat.enumerate ~gauss:true ~limit f in
      let w = Sat.Bsat.enumerate ~gauss:false ~limit f in
      if g.Sat.Bsat.exhausted <> w.Sat.Bsat.exhausted then
        QCheck2.Test.fail_report "engines disagree on exhaustion";
      (* a limit-cut enumeration may surface a different (equally
         valid) subset of the witness set per engine; the witness
         streams are only required to be bit-identical when the cell
         is fully enumerated — which is the only case UniGen accepts *)
      if g.Sat.Bsat.exhausted && keys g <> keys w then
        QCheck2.Test.fail_report
          "gauss and 2-watch enumerations differ on an exhausted cell";
      let brute =
        Sat.Brute.count_projected f (Cnf.Formula.sampling_vars f)
      in
      if g.Sat.Bsat.exhausted then List.length g.Sat.Bsat.models = brute
      else List.length g.Sat.Bsat.models = limit && brute >= limit)

(* ------------------------------------------------------------------ *)
(* Observability: the gauss counters surface through Obs.Metrics when
   the Gauss engine does real work. *)

let test_gauss_counters_surface () =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  let rng = Rng.create 7 in
  let f =
    Test_util.Gen.random_formula_with_xors rng ~num_vars:12 ~num_clauses:10
      ~num_xors:6 ~width:3
  in
  let out = Sat.Bsat.enumerate ~gauss:true ~limit:16 f in
  ignore (out.Sat.Bsat.models : Cnf.Model.t list);
  (* a session layer swap exercises push/pop accounting *)
  let session = Sat.Bsat.Session.create f in
  let xors = [ Cnf.Xor_clause.make [ 1; 2; 3 ] true ] in
  ignore (Sat.Bsat.Session.enumerate ~xors ~limit:4 session : Sat.Bsat.outcome);
  let snap = Obs.Metrics.snapshot () in
  let counter name =
    match List.assoc_opt name snap.Obs.Metrics.counters with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check bool)
    "gauss_row_reductions > 0" true
    (counter "solver.gauss_row_reductions" > 0);
  Alcotest.(check bool)
    "gauss_detached_rows > 0" true
    (counter "solver.gauss_detached_rows" > 0);
  Alcotest.(check bool)
    "gauss_matrix_pushes > 0" true
    (counter "solver.gauss_matrix_pushes" > 0);
  Obs.Metrics.reset ();
  Obs.Metrics.disable ()

let test_uses_gauss_flag () =
  let f = Test_util.Gen.build_spec (3, 5, 6, 2) in
  Alcotest.(check bool) "default engine is gauss" true
    (Sat.Solver.uses_gauss (Sat.Solver.create f));
  Alcotest.(check bool) "no-gauss engine is 2-watch" false
    (Sat.Solver.uses_gauss (Sat.Solver.create ~gauss:false f))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_fixpoint_matches_static_rref;
      prop_pushpop_restores_matrix;
      prop_gauss_vs_2watch_enumeration;
    ]

let () =
  Alcotest.run "gauss"
    [
      ("properties", qcheck_cases);
      ( "observability",
        [
          Alcotest.test_case "gauss counters surface" `Quick
            test_gauss_counters_surface;
          Alcotest.test_case "uses_gauss flag" `Quick test_uses_gauss_flag;
        ] );
    ]

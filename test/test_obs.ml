(* Tests for the observability layer: histogram merge laws (the
   algebra that makes domain-sharded aggregation lossless), the
   sharding machinery itself across real domains, report rendering,
   and a golden check that a traced run emits well-formed Chrome
   trace_event JSON. *)

(* ------------------------------------------------------------------ *)
(* Hist merge laws (qcheck) *)

let hist_of_list vs = List.fold_left Obs.Metrics.Hist.observe Obs.Metrics.Hist.empty vs

(* sums are compared up to float re-association error *)
let hist_eq (a : Obs.Metrics.Hist.data) (b : Obs.Metrics.Hist.data) =
  let sa = a.Obs.Metrics.Hist.sum and sb = b.Obs.Metrics.Hist.sum in
  a.Obs.Metrics.Hist.count = b.Obs.Metrics.Hist.count
  && Float.abs (sa -. sb) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs sa) (Float.abs sb))
  && a.Obs.Metrics.Hist.buckets = b.Obs.Metrics.Hist.buckets

(* Observations as a sampler would produce them: wall times, cell
   sizes, the odd zero/negative/huge outlier. *)
let obs_gen =
  QCheck2.Gen.(
    oneof
      [
        float_bound_inclusive 2.0;
        map (fun n -> float_of_int n) (int_bound 1_000_000);
        map (fun f -> -.f) (float_bound_inclusive 1.0);
        return 0.0;
        return infinity;
        return nan;
      ])

let shard_gen = QCheck2.Gen.(list_size (int_bound 40) obs_gen)

let prop_merge_commutative =
  QCheck2.Test.make ~count:200 ~name:"Hist.merge commutative"
    QCheck2.Gen.(pair shard_gen shard_gen)
    (fun (xs, ys) ->
      let a = hist_of_list xs and b = hist_of_list ys in
      hist_eq (Obs.Metrics.Hist.merge a b) (Obs.Metrics.Hist.merge b a))

let prop_merge_associative =
  QCheck2.Test.make ~count:200 ~name:"Hist.merge associative"
    QCheck2.Gen.(triple shard_gen shard_gen shard_gen)
    (fun (xs, ys, zs) ->
      let a = hist_of_list xs and b = hist_of_list ys and c = hist_of_list zs in
      hist_eq
        (Obs.Metrics.Hist.merge a (Obs.Metrics.Hist.merge b c))
        (Obs.Metrics.Hist.merge (Obs.Metrics.Hist.merge a b) c))

let prop_merge_empty_neutral =
  QCheck2.Test.make ~count:200 ~name:"Hist.merge empty neutral"
    shard_gen
    (fun xs ->
      let a = hist_of_list xs in
      hist_eq (Obs.Metrics.Hist.merge a Obs.Metrics.Hist.empty) a
      && hist_eq (Obs.Metrics.Hist.merge Obs.Metrics.Hist.empty a) a)

(* Sharded observation then merge = observing everything in one shard:
   exactly the claim snapshot/compact_shards rely on. *)
let prop_merge_is_concat =
  QCheck2.Test.make ~count:200 ~name:"Hist.merge == observe concatenation"
    QCheck2.Gen.(pair shard_gen shard_gen)
    (fun (xs, ys) ->
      hist_eq
        (Obs.Metrics.Hist.merge (hist_of_list xs) (hist_of_list ys))
        (hist_of_list (xs @ ys)))

(* Quantiles of a log₂ histogram are bucket upper edges, so they are
   monotone in q by construction — the law the monitor's p50 ≤ p90 ≤
   p99 display relies on. *)
let prop_quantile_monotone =
  QCheck2.Test.make ~count:200 ~name:"Hist.quantile monotone in q"
    shard_gen
    (fun xs ->
      let d = hist_of_list xs in
      let q50 = Obs.Metrics.Hist.quantile d 0.5 in
      let q90 = Obs.Metrics.Hist.quantile d 0.9 in
      let q99 = Obs.Metrics.Hist.quantile d 0.99 in
      q50 <= q90 && q90 <= q99)

let test_bucket_edges () =
  Alcotest.(check int) "zero -> bucket 0" 0 (Obs.Metrics.Hist.bucket_of 0.0);
  Alcotest.(check int) "negative -> bucket 0" 0 (Obs.Metrics.Hist.bucket_of (-3.0));
  Alcotest.(check int) "nan -> bucket 0" 0 (Obs.Metrics.Hist.bucket_of Float.nan);
  Alcotest.(check int) "huge -> last bucket"
    (Obs.Metrics.Hist.num_buckets - 1)
    (Obs.Metrics.Hist.bucket_of 1e300);
  (* monotone in v *)
  let rec check_monotone prev v =
    if v < 1e12 then begin
      let b = Obs.Metrics.Hist.bucket_of v in
      if b < prev then Alcotest.failf "bucket_of not monotone at %g" v;
      check_monotone b (v *. 1.7)
    end
  in
  check_monotone 0 1e-12

(* ------------------------------------------------------------------ *)
(* Rolling windows: the ring's expiry algebra against a reference
   model. Every Window operation takes ~now explicitly, so the
   structure is a pure function of the observation sequence. *)

(* (time increment, value) pairs; increments span several bucket
   widths so sequences regularly cross and outrun the ring *)
let window_ops_gen =
  QCheck2.Gen.(
    list_size (int_bound 60)
      (pair (float_bound_inclusive 25.0) (float_bound_inclusive 2.0)))

(* "sum of live buckets = snapshot": replay the same observations into
   a flat log and keep exactly those whose epoch lies in
   (current - buckets, current] — the snapshot must be their histogram. *)
let prop_window_snapshot_is_live_sum =
  QCheck2.Test.make ~count:200 ~name:"Window.snapshot = sum of live epochs"
    window_ops_gen
    (fun ops ->
      let w = Obs.Window.create ~buckets:4 ~bucket_s:5.0 () in
      let now = ref 100.0 in
      let log = ref [] in
      List.iter
        (fun (dt, v) ->
          now := !now +. dt;
          Obs.Window.observe w ~now:!now v;
          log := (Obs.Window.epoch_of w !now, v) :: !log)
        ops;
      let e = Obs.Window.epoch_of w !now in
      let n = Obs.Window.buckets w in
      let live =
        List.rev !log
        |> List.filter_map (fun (ep, v) ->
               if ep > e - n && ep <= e then Some v else None)
      in
      hist_eq (Obs.Window.snapshot w ~now:!now) (hist_of_list live)
      && Obs.Window.count w ~now:!now = List.length live)

(* "advance = drop-oldest": moving the clock one bucket forward
   removes exactly the oldest epoch's observations from the view,
   without touching the ring. *)
let test_window_advance_drops_oldest () =
  let w = Obs.Window.create ~buckets:3 ~bucket_s:1.0 () in
  Obs.Window.observe w ~now:10.2 1.0;
  Obs.Window.observe w ~now:11.2 1.0;
  Obs.Window.observe w ~now:12.2 1.0;
  Alcotest.(check int) "all three live" 3 (Obs.Window.count w ~now:12.2);
  Alcotest.(check int) "oldest epoch ages out" 2 (Obs.Window.count w ~now:13.2);
  Alcotest.(check int) "next epoch ages out" 1 (Obs.Window.count w ~now:14.2);
  Alcotest.(check int) "window empties" 0 (Obs.Window.count w ~now:15.2);
  (* a whole-ring jump expires everything at once, even though the
     slots still physically hold the stale epochs *)
  Obs.Window.observe w ~now:20.0 1.0;
  Alcotest.(check int) "full-ring jump leaves one" 1
    (Obs.Window.count w ~now:20.0);
  Alcotest.(check (float 1e-9)) "rate = count / span"
    (1.0 /. Obs.Window.span_s w)
    (Obs.Window.rate_per_s w ~now:20.0)

(* ------------------------------------------------------------------ *)
(* Domain-sharded counters: lossless across real domains *)

let test_shard_merge_across_domains () =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  Fun.protect ~finally:Obs.Metrics.disable @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.sharded" in
  let h = Obs.Metrics.histogram "test.obs.sharded_hist" in
  let per_domain = 5_000 in
  let work () =
    for i = 1 to per_domain do
      Obs.Metrics.incr c;
      if i mod 10 = 0 then Obs.Metrics.observe h (float_of_int i)
    done
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn work) in
  work ();
  Array.iter Domain.join domains;
  Obs.Metrics.compact_shards ();
  let s = Obs.Metrics.snapshot () in
  Alcotest.(check int)
    "counter sums over all shards" (4 * per_domain)
    (List.assoc "test.obs.sharded" s.Obs.Metrics.counters);
  let hd = List.assoc "test.obs.sharded_hist" s.Obs.Metrics.histograms in
  Alcotest.(check int)
    "histogram count sums over all shards" (4 * (per_domain / 10))
    hd.Obs.Metrics.Hist.count;
  (* compacting twice must not double-count *)
  Obs.Metrics.compact_shards ();
  let s2 = Obs.Metrics.snapshot () in
  Alcotest.(check int) "compact_shards idempotent" (4 * per_domain)
    (List.assoc "test.obs.sharded" s2.Obs.Metrics.counters)

let test_disabled_records_nothing () =
  Obs.Metrics.reset ();
  Obs.Metrics.disable ();
  let c = Obs.Metrics.counter "test.obs.disabled" in
  Obs.Metrics.incr c ~by:42;
  Obs.Metrics.observe (Obs.Metrics.histogram "test.obs.disabled_hist") 1.0;
  Obs.Metrics.set_gauge "test.obs.disabled_gauge" 1.0;
  let s = Obs.Metrics.snapshot () in
  Alcotest.(check bool) "no counter recorded" true
    (not (List.mem_assoc "test.obs.disabled" s.Obs.Metrics.counters));
  Alcotest.(check bool) "no histogram recorded" true
    (not (List.mem_assoc "test.obs.disabled_hist" s.Obs.Metrics.histograms));
  Alcotest.(check bool) "no gauge recorded" true
    (not (List.mem_assoc "test.obs.disabled_gauge" s.Obs.Metrics.gauges))

(* ------------------------------------------------------------------ *)
(* Report: span-prefixed histograms separate from value histograms *)

let test_report_sections () =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  Fun.protect ~finally:Obs.Metrics.disable @@ fun () ->
  Obs.Metrics.observe (Obs.Metrics.histogram "test.obs.values") 8.0;
  Obs.Metrics.add_span "test.obs.phase" 0.25;
  let s = Obs.Metrics.snapshot () in
  let phases = Obs.Report.phase_fields s in
  Alcotest.(check bool) "span histogram appears in phases" true
    (List.mem_assoc "test.obs.phase" phases);
  Alcotest.(check bool) "value histogram stays out of phases" true
    (not (List.mem_assoc "test.obs.values" phases));
  let json =
    let r = Obs.Report.create ~host:true () in
    List.iter (fun (t, fs) -> Obs.Report.add_section r t fs)
      (Obs.Report.metrics_sections s);
    Obs.Report.to_json r
  in
  (* the report must embed host metadata and survive a JSON parse *)
  Alcotest.(check bool) "report mentions ocaml_version" true
    (String.length json > 0
    && Test_util.Json.mem "ocaml_version" (Test_util.Json.parse json))

(* ------------------------------------------------------------------ *)
(* Golden: traced run emits well-formed Chrome trace JSON *)

let test_trace_file_well_formed () =
  let path = Filename.temp_file "obs_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Trace.enable_file path;
  Obs.Trace.span ~cat:"test" "outer" (fun () ->
      Obs.Trace.instant ~args:[ ("k", "v\"quoted\"") ] "marker";
      Obs.Trace.span "inner" (fun () -> ignore (Sys.opaque_identity 1));
      (* a raising span must still close its event *)
      (try Obs.Trace.span "raising" (fun () -> failwith "boom")
       with Failure _ -> ()));
  Obs.Trace.close ();
  Alcotest.(check bool) "close idempotent" true
    (Obs.Trace.close (); not (Obs.Trace.is_enabled ()));
  let ic = open_in path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  let events =
    match Test_util.Json.parse raw with
    | Test_util.Json.List evs -> evs
    | _ -> Alcotest.fail "trace file is not a JSON array"
  in
  Alcotest.(check int) "3 B + 3 E + 1 instant" 7 (List.length events);
  let field ev k =
    match ev with
    | Test_util.Json.Obj fs -> List.assoc_opt k fs
    | _ -> Alcotest.fail "event is not an object"
  in
  let stack = ref [] in
  List.iter
    (fun ev ->
      (match (field ev "name", field ev "ts", field ev "pid", field ev "tid") with
      | Some (Test_util.Json.Str _), Some (Test_util.Json.Num _),
        Some (Test_util.Json.Num _), Some (Test_util.Json.Num _) -> ()
      | _ -> Alcotest.fail "event missing name/ts/pid/tid");
      match field ev "ph" with
      | Some (Test_util.Json.Str "B") ->
          stack := field ev "name" :: !stack
      | Some (Test_util.Json.Str "E") -> (
          match !stack with
          | top :: rest ->
              Alcotest.(check bool) "E matches innermost B" true
                (top = field ev "name");
              stack := rest
          | [] -> Alcotest.fail "E without matching B")
      | Some (Test_util.Json.Str "i") -> ()
      | _ -> Alcotest.fail "unexpected ph")
    events;
  Alcotest.(check int) "all B events closed" 0 (List.length !stack)

(* ------------------------------------------------------------------ *)
(* Golden: one request's spans share a trace id across domain lanes *)

let test_trace_id_across_lanes () =
  let path = Filename.temp_file "obs_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Trace.enable_file path;
  (* the scheduler's shape in miniature: an async queue span opened on
     the owner, the request body on a worker domain, both tagged with
     one trace id *)
  Obs.Trace.span_begin ~cat:"test" ~id:"abc" "test.queue"
    ~args:[ ("trace_id", "abc") ];
  Obs.Trace.with_trace_id (Some "abc") (fun () ->
      Obs.Trace.span ~cat:"test" "test.owner" (fun () ->
          ignore (Sys.opaque_identity 1)));
  let worker =
    Domain.spawn (fun () ->
        Obs.Trace.with_trace_id (Some "abc") (fun () ->
            Obs.Trace.span ~cat:"test" "test.worker" (fun () ->
                ignore (Sys.opaque_identity 2))))
  in
  Domain.join worker;
  Obs.Trace.span_end ~cat:"test" ~id:"abc" "test.queue"
    ~args:[ ("trace_id", "abc") ];
  Obs.Trace.close ();
  let ic = open_in path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let events =
    match Test_util.Json.parse raw with
    | Test_util.Json.List evs -> evs
    | _ -> Alcotest.fail "trace file is not a JSON array"
  in
  let field ev k =
    match ev with
    | Test_util.Json.Obj fs -> List.assoc_opt k fs
    | _ -> Alcotest.fail "event is not an object"
  in
  let arg ev k =
    match field ev "args" with
    | Some (Test_util.Json.Obj fs) -> List.assoc_opt k fs
    | _ -> None
  in
  Alcotest.(check int) "b + 2B + 2E + e" 6 (List.length events);
  (* every event of the request carries the same trace id, whichever
     domain lane it was emitted from *)
  List.iter
    (fun ev ->
      Alcotest.(check bool) "event tagged with the trace id" true
        (arg ev "trace_id" = Some (Test_util.Json.Str "abc")))
    events;
  (* the async pair is keyed by the id field *)
  List.iter
    (fun ev ->
      match field ev "ph" with
      | Some (Test_util.Json.Str ("b" | "e")) ->
          Alcotest.(check bool) "async events keyed by id" true
            (field ev "id" = Some (Test_util.Json.Str "abc"))
      | _ -> ())
    events;
  (* owner and worker spans really sit in different lanes *)
  let tid_of name =
    List.find_map
      (fun ev ->
        if
          field ev "name" = Some (Test_util.Json.Str name)
          && field ev "ph" = Some (Test_util.Json.Str "B")
        then field ev "tid"
        else None)
      events
  in
  match (tid_of "test.owner", tid_of "test.worker") with
  | Some a, Some b ->
      Alcotest.(check bool) "distinct domain lanes" true (a <> b)
  | _ -> Alcotest.fail "owner/worker spans missing"

(* ------------------------------------------------------------------ *)
(* Structured log: one JSON object per line with the leading schema
   keys, level filtering, idempotent close *)

let test_log_json_lines () =
  let path = Filename.temp_file "obs_log" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Log.enable_file path;
  Obs.Log.set_level Obs.Log.Info;
  Obs.Log.event "service.request"
    [
      ("trace_id", Obs.Report.String "req-1");
      ("outcome", Obs.Report.String "ok");
      ("queue_ms", Obs.Report.Float 0.5);
      ("cache", Obs.Report.String "miss");
    ];
  Obs.Log.event ~level:Obs.Log.Debug "dropped.by.level" [];
  Obs.Log.event ~level:Obs.Log.Warn "service.request"
    [ ("trace_id", Obs.Report.String "req-2") ];
  Obs.Log.close ();
  Obs.Log.close ();
  Alcotest.(check bool) "close disables" true (not (Obs.Log.is_enabled ()));
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  Alcotest.(check int) "debug line dropped" 2 (List.length lines);
  let objs = List.map Test_util.Json.parse lines in
  List.iter
    (fun o ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (Test_util.Json.mem k o))
        [ "ts"; "level"; "event"; "trace_id" ])
    objs;
  match objs with
  | [ Test_util.Json.Obj first; Test_util.Json.Obj second ] ->
      Alcotest.(check bool) "info level" true
        (List.assoc_opt "level" first = Some (Test_util.Json.Str "info"));
      Alcotest.(check bool) "warn level" true
        (List.assoc_opt "level" second = Some (Test_util.Json.Str "warn"));
      Alcotest.(check bool) "typed field survives" true
        (List.assoc_opt "cache" first = Some (Test_util.Json.Str "miss"))
  | _ -> Alcotest.fail "expected two JSON object lines"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_merge_commutative;
            prop_merge_associative;
            prop_merge_empty_neutral;
            prop_merge_is_concat;
            prop_quantile_monotone;
          ]
        @ [ Alcotest.test_case "bucket edges" `Quick test_bucket_edges ] );
      ( "window",
        [
          QCheck_alcotest.to_alcotest prop_window_snapshot_is_live_sum;
          Alcotest.test_case "advance drops oldest" `Quick
            test_window_advance_drops_oldest;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "shard merge across domains" `Quick
            test_shard_merge_across_domains;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
        ] );
      ( "report",
        [ Alcotest.test_case "sections and json" `Quick test_report_sections ] );
      ( "trace",
        [
          Alcotest.test_case "chrome trace well-formed" `Quick
            test_trace_file_well_formed;
          Alcotest.test_case "trace id across domain lanes" `Quick
            test_trace_id_across_lanes;
        ] );
      ( "log",
        [ Alcotest.test_case "json lines and levels" `Quick test_log_json_lines ]
      );
    ]

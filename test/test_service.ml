(* Tests for the sampling service subsystem (lib/service): LRU cache
   semantics, content-addressed registry canonicalization, scheduler
   policy (backpressure, deadlines, fairness, cancellation), the wire
   codec, and the determinism contract — service-path witnesses must
   be bit-identical to offline [Unigen.sample_batch] for the same
   seeds, on both cache hit and cache miss. *)

module Lru = Service.Lru
module Registry = Service.Registry
module Cache = Service.Cache
module Scheduler = Service.Scheduler
module Wire = Service.Wire
module Json = Service.Json
module Spill = Service.Spill
module Client = Service.Client

(* ------------------------------------------------------------------ *)
(* LRU *)

let test_lru_eviction_order () =
  let evicted = ref [] in
  let c = Lru.create ~on_evict:(fun k _ -> evicted := k :: !evicted) ~capacity:2 () in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Alcotest.(check (list string)) "mru order" [ "b"; "a" ] (Lru.keys_mru c);
  (* touching [a] protects it; the next insertion evicts [b] *)
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  Lru.put c "c" 3;
  Alcotest.(check (list string)) "b evicted" [ "c"; "a" ] (Lru.keys_mru c);
  Alcotest.(check (list string)) "evict callback" [ "b" ] !evicted;
  Alcotest.(check (option int)) "b gone" None (Lru.find c "b");
  Alcotest.(check int) "length" 2 (Lru.length c)

let test_lru_pinning () =
  let c = Lru.create ~capacity:2 () in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Alcotest.(check bool) "pin a" true (Lru.pin c "a");
  Alcotest.(check bool) "pin missing" false (Lru.pin c "zz");
  (* [a] is LRU but pinned: inserting [c] evicts [b] instead *)
  Lru.put c "c" 3;
  Alcotest.(check bool) "a survives" true (Lru.mem c "a");
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  (* pin the rest: the cache may exceed capacity rather than drop pins *)
  ignore (Lru.pin c "c" : bool);
  Lru.put c "d" 4;
  Alcotest.(check int) "over capacity under full pin" 3 (Lru.length c);
  Alcotest.(check bool) "d resident" true (Lru.mem c "d");
  (* releasing a pin re-enables the deferred eviction *)
  Alcotest.(check bool) "unpin a" true (Lru.unpin c "a");
  Alcotest.(check int) "shrunk back" 2 (Lru.length c);
  Alcotest.(check bool) "a evicted on unpin" false (Lru.mem c "a");
  (* explicit removal overrides pinning *)
  Alcotest.(check bool) "remove pinned c" true (Lru.remove c "c");
  Alcotest.(check bool) "c gone" false (Lru.mem c "c")

let test_lru_capacity_edge_cases () =
  (* capacity 0: nothing is ever resident *)
  let evicted = ref 0 in
  let c0 = Lru.create ~on_evict:(fun _ _ -> incr evicted) ~capacity:0 () in
  Lru.put c0 "a" 1;
  Alcotest.(check int) "cap0 empty" 0 (Lru.length c0);
  Alcotest.(check (option int)) "cap0 miss" None (Lru.find c0 "a");
  Alcotest.(check int) "cap0 evicted immediately" 1 !evicted;
  Alcotest.(check bool) "cap0 pin impossible" false (Lru.pin c0 "a");
  (* capacity 1: every insertion displaces the previous entry *)
  let c1 = Lru.create ~capacity:1 () in
  Lru.put c1 "a" 1;
  Lru.put c1 "b" 2;
  Alcotest.(check (list string)) "cap1 single" [ "b" ] (Lru.keys_mru c1);
  Alcotest.(check (option int)) "cap1 hit" (Some 2) (Lru.find c1 "b");
  (* replacement of the resident key is not an eviction *)
  Lru.put c1 "b" 9;
  Alcotest.(check (option int)) "cap1 replace" (Some 9) (Lru.find c1 "b");
  Alcotest.(check bool) "negative capacity rejected" true
    (match Lru.create ~capacity:(-1) () with
    | exception Invalid_argument _ -> true
    | (_ : (string, int) Lru.t) -> false)

let test_lru_pin_cycle_and_reput () =
  let c = Lru.create ~capacity:3 () in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Lru.put c "c" 3;
  (* re-put under a pinned key updates the value, keeps the pin, and
     counts as a touch *)
  Alcotest.(check bool) "pin a" true (Lru.pin c "a");
  Lru.put c "a" 10;
  Alcotest.(check bool) "pin survives re-put" true (Lru.is_pinned c "a");
  Alcotest.(check (option int)) "value replaced" (Some 10) (Lru.find c "a");
  Alcotest.(check int) "still three entries" 3 (Lru.length c);
  Alcotest.(check (list string)) "re-put is a touch" [ "a"; "c"; "b" ]
    (Lru.keys_mru c);
  (* pin/unpin are not touches: recency order is unchanged *)
  ignore (Lru.pin c "b" : bool);
  ignore (Lru.unpin c "b" : bool);
  Alcotest.(check (list string)) "pin/unpin cycle leaves order" [ "a"; "c"; "b" ]
    (Lru.keys_mru c);
  (* pin the LRU; eviction skips it and takes the next-oldest *)
  Alcotest.(check bool) "pin b" true (Lru.pin c "b");
  Lru.put c "d" 4;
  Alcotest.(check bool) "pinned LRU spared" true (Lru.mem c "b");
  Alcotest.(check bool) "next-oldest evicted" false (Lru.mem c "c");
  Alcotest.(check (list string)) "order after skip-eviction" [ "d"; "a"; "b" ]
    (Lru.keys_mru c);
  (* removing a pinned entry drops its pin count with it *)
  Alcotest.(check bool) "remove pinned" true (Lru.remove c "b");
  Alcotest.(check int) "pin count cleared" 0 (Lru.pin_count c "b");
  (* re-insertion under the previously-pinned key starts unpinned: no
     ghost pin protects it from eviction *)
  Lru.put c "b" 20;
  Alcotest.(check bool) "fresh insert unpinned" false (Lru.is_pinned c "b");
  Lru.put c "e" 5;
  Lru.put c "f" 6;
  Lru.put c "g" 7;
  Alcotest.(check bool) "no ghost pin after remove" false (Lru.mem c "b")

(* ------------------------------------------------------------------ *)
(* Registry *)

let formula_of_string = Cnf.Dimacs.parse_string

let test_registry_fingerprint_invariance () =
  (* same formula modulo clause order, literal order, duplicate
     literals/clauses, a tautology, and sampling-set order *)
  let a =
    formula_of_string
      "p cnf 5 4\nc ind 1 2 3 0\n1 2 0\n-2 3 0\nx 1 -4 5 0\n4 -4 5 0\n"
  in
  let b =
    formula_of_string
      "p cnf 5 4\nc ind 3 1 2 2 0\n-2 3 0\n2 1 1 0\nx -4 1 5 0\n"
  in
  Alcotest.(check string)
    "equivalent formulas share a fingerprint" (Registry.fingerprint a)
    (Registry.fingerprint b);
  let c = formula_of_string "p cnf 5 2\nc ind 1 2 3 0\n1 2 0\n-2 4 0\n" in
  Alcotest.(check bool)
    "different formulas differ" false
    (String.equal (Registry.fingerprint a) (Registry.fingerprint c));
  (* declared-vs-absent sampling set is a different identity *)
  let d = formula_of_string "p cnf 5 2\n1 2 0\n-2 3 0\n" in
  let d' = formula_of_string "p cnf 5 2\nc ind 1 2 3 4 5 0\n1 2 0\n-2 3 0\n" in
  Alcotest.(check bool)
    "absent vs full sampling set differ" false
    (String.equal (Registry.fingerprint d) (Registry.fingerprint d'))

let test_registry_canonical_idempotent () =
  let f =
    formula_of_string "p cnf 6 4\nc ind 2 1 0\n3 -3 1 0\n2 2 -5 0\nx -1 6 0\n1 -5 2 0\n"
  in
  let once = Registry.canonical f in
  let twice = Registry.canonical once in
  Alcotest.(check string) "canonical is idempotent"
    (Cnf.Dimacs.to_string once) (Cnf.Dimacs.to_string twice);
  Alcotest.(check string) "serialize matches canonical"
    (Registry.serialize f) (Registry.serialize once)

let test_registry_interning () =
  let r = Registry.create () in
  let a = formula_of_string "p cnf 3 2\n1 2 0\n-1 3 0\n" in
  let b = formula_of_string "p cnf 3 2\n-1 3 0\n2 1 0\n" in
  let fp_a, can_a = Registry.intern r a in
  let fp_b, can_b = Registry.intern r b in
  Alcotest.(check string) "same address" fp_a fp_b;
  Alcotest.(check bool) "physically shared canonical" true (can_a == can_b);
  Alcotest.(check int) "one entry" 1 (Registry.length r);
  Alcotest.(check bool) "find" true
    (match Registry.find r fp_a with Some f -> f == can_a | None -> false)

(* Golden vectors: the serialized form and MD5 content address of
   fixed formulas, locked against checked-in constants. Durable spill
   entries are keyed by fingerprints, so these values are the on-disk
   compatibility contract — if this test breaks, the canonicalization
   changed, and [Registry.version] must be bumped so stale spill
   entries invalidate themselves instead of resurrecting under a new
   meaning of the same address. *)
let test_registry_golden_vectors () =
  Alcotest.(check string) "registry version" "unigen-registry-v1"
    Registry.version;
  List.iter
    (fun (label, text, serialized, md5) ->
      let f = formula_of_string text in
      Alcotest.(check string) (label ^ ": serialized form") serialized
        (Registry.serialize f);
      Alcotest.(check string) (label ^ ": content address") md5
        (Registry.fingerprint f))
    [
      ( "clauses",
        "p cnf 4 3\nc ind 1 2 3 0\n3 2 1 0\n-1 4 0\n-1 4 0\n",
        "unigen-registry-v1\np cnf 4 2\nc ind 1 2 3 0\n-1 4 0\n1 2 3 0\n",
        "98a0a7f5fd4f61ab876ebfa29d986391" );
      ( "xor rows",
        "p cnf 5 2\nc ind 1 2 0\n1 -2 0\nx 5 3 4 0\n",
        "unigen-registry-v1\np cnf 5 2\nc ind 1 2 0\n1 -2 0\nx 3 4 5 0\n",
        "d7e9c111c2737029590590f6e17c462d" );
      ( "absent sampling set",
        "p cnf 3 2\n1 2 0\n-2 3 0\n",
        "unigen-registry-v1\np cnf 3 2\n1 2 0\n-2 3 0\n",
        "01dbf3be098a7eca9c89a15a45dd087d" );
    ]

(* The DIMACS round-trip property: parse ∘ print is the identity up to
   canonical ordering — which is exactly fingerprint equality. This is
   the specification the registry's canonicalization is held to,
   XOR (`x`-line) clauses and sampling sets included. *)
let prop_dimacs_roundtrip_canonical =
  QCheck2.Test.make ~count:300 ~name:"dimacs roundtrip = id modulo canonical order"
    Test_util.Gen.formula_spec (fun spec ->
      let f = Test_util.Gen.build_spec spec in
      let f = Cnf.Formula.with_sampling_set f [ 1 ] in
      let reparsed = Cnf.Dimacs.parse_string (Cnf.Dimacs.to_string f) in
      String.equal (Registry.fingerprint f) (Registry.fingerprint reparsed))

let prop_canonical_preserves_models =
  QCheck2.Test.make ~count:120 ~name:"canonicalization preserves the model set"
    Test_util.Gen.formula_spec (fun spec ->
      let f = Test_util.Gen.build_spec spec in
      let g = Registry.canonical f in
      (* enumerate by brute force over all assignments (num_vars <= 12) *)
      let n = f.Cnf.Formula.num_vars in
      let ok = ref true in
      for mask = 0 to (1 lsl n) - 1 do
        let value v = mask land (1 lsl (v - 1)) <> 0 in
        if Cnf.Formula.eval f value <> Cnf.Formula.eval g value then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let test_wire_framing_incremental () =
  let payloads = [ "hello"; ""; String.make 100_000 'x'; "{\"op\":\"status\"}" ] in
  let stream = String.concat "" (List.map Wire.encode_frame payloads) in
  let d = Wire.Decoder.create () in
  let out = ref [] in
  (* feed a byte at a time: frames must reassemble across chunk splits *)
  String.iter
    (fun ch ->
      Wire.Decoder.feed d (Bytes.make 1 ch) 1;
      let rec drain () =
        match Wire.Decoder.next d with
        | Some p ->
            out := p :: !out;
            drain ()
        | None -> ()
      in
      drain ())
    stream;
  Alcotest.(check (list string)) "frames reassemble" payloads (List.rev !out);
  Alcotest.(check int) "fully consumed" 0 (Wire.Decoder.buffered d);
  (* an oversized length prefix is rejected before buffering *)
  let d2 = Wire.Decoder.create () in
  Wire.Decoder.feed d2 (Bytes.of_string "\xff\xff\xff\xff") 4;
  Alcotest.check_raises "oversized frame" (Wire.Frame_error "frame exceeds max_frame")
    (fun () -> ignore (Wire.Decoder.next d2 : string option))

let test_wire_json_roundtrip () =
  let reqs =
    [
      Wire.Sample
        {
          Wire.formula_text = "p cnf 2 1\n1 -2 0\n";
          n = 5;
          seed = 42;
          prepare_seed = 7;
          epsilon = 3.5;
          count_iterations = Some 9;
          timeout_s = Some 1.5;
          max_attempts = 11;
          pin = true;
          tag = Some "job-\"1\"\n";
          trace_id = Some "trace-abc";
        };
      Wire.Sample Wire.default_sample_req;
      Wire.Cancel "t1";
      Wire.Status;
      Wire.Window;
      Wire.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      let r' =
        Wire.request_of_json (Json.of_string (Json.to_string (Wire.request_to_json r)))
      in
      Alcotest.(check bool) "request roundtrip" true (r = r'))
    reqs;
  let resps =
    [
      Wire.Ok_sample
        {
          Wire.fingerprint = "abc";
          cache = Wire.Cache_ram;
          witnesses = [ [ 1; -2; 3 ]; [ -1; 2; -3 ] ];
          produced = 2;
          requested = 3;
          queue_wait_s = 0.25;
          rsp_tag = Some "t";
          rsp_trace_id = "trace-abc";
        };
      Wire.Rejected { reason = Wire.Queue_full; retry_after_s = 0.5 };
      Wire.Rejected { reason = Wire.Batch_too_large; retry_after_s = 0.0 };
      Wire.Rejected { reason = Wire.Draining; retry_after_s = 0.0 };
      Wire.Deadline_miss { rsp_tag = None };
      Wire.Cancelled { rsp_tag = Some "x" };
      Wire.Cancel_result true;
      Wire.Unsat { rsp_tag = None };
      Wire.Error_msg "boom";
      Wire.Metrics
        {
          values = [ ("service.requests", 3.0); ("service.queue_depth", 0.0) ];
          info = [ ("xor_engine", "gauss"); ("ocaml_version", "5.1.0") ];
        };
      Wire.Window_report
        {
          Wire.window_s = 120.0;
          uptime_s = 3.5;
          jobs = 2;
          w_in_flight = 1;
          w_queued = 0;
          xor_engine = "gauss";
          ocaml_version = "5.1.0";
          w_requests = 7;
          rate_per_s = 0.25;
          w_deadline_misses = 1;
          w_hits = 4;
          w_misses = 3;
          p50_ms = 8.0;
          p90_ms = 16.0;
          p99_ms = 32.0;
          queue_p50_ms = 0.5;
          queue_p90_ms = 1.0;
          queue_p99_ms = 2.0;
          per_fp =
            [
              {
                Wire.fp = "abc123";
                fp_requests = 7;
                fp_hits = 4;
                fp_misses = 3;
                fp_p50_ms = 8.0;
                fp_p90_ms = 16.0;
                fp_p99_ms = 32.0;
              };
            ];
        };
      Wire.Bye;
    ]
  in
  List.iter
    (fun r ->
      let r' =
        Wire.response_of_json (Json.of_string (Json.to_string (Wire.response_to_json r)))
      in
      Alcotest.(check bool) "response roundtrip" true (r = r'))
    resps

(* ------------------------------------------------------------------ *)
(* Scheduler helpers *)

let sample_request ?(n = 3) ?(seed = 1) ?(prepare_seed = 1) ?(epsilon = 6.0)
    ?count_iterations ?timeout_s ?(pin = false) ?tag ?trace_id formula =
  {
    Scheduler.formula;
    n;
    seed;
    prepare_seed;
    epsilon;
    count_iterations;
    timeout_s;
    max_attempts = 20;
    pin;
    tag;
    trace_id;
  }

let submit_ok sched req =
  match Scheduler.submit sched req with
  | Ok id -> id
  | Error _ -> Alcotest.fail "submission unexpectedly rejected"

let step_ok sched =
  match Scheduler.step sched with
  | Some c -> c
  | None -> Alcotest.fail "expected a pending request"

let with_sched ?(config = Scheduler.default_config) f =
  let sched = Scheduler.create ~config () in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown sched) (fun () -> f sched)

let formula_a = "p cnf 4 2\nc ind 1 2 3 0\n1 2 3 0\n-1 4 0\n"
let formula_b = "p cnf 4 2\nc ind 1 2 3 0\n-1 -2 0\n2 3 4 0\n"
let formula_c = "p cnf 4 2\nc ind 1 2 3 0\n1 -2 0\n-3 4 0\n"

(* ------------------------------------------------------------------ *)
(* Scheduler policy *)

let test_scheduler_backpressure () =
  with_sched ~config:{ Scheduler.default_config with Scheduler.queue_capacity = 2 }
  @@ fun sched ->
  let f = formula_of_string formula_a in
  ignore (submit_ok sched (sample_request f) : int);
  ignore (submit_ok sched (sample_request f) : int);
  Alcotest.(check int) "queue full" 2 (Scheduler.pending sched);
  (* third submission exceeds the admission queue: reject-with-retry *)
  (match Scheduler.submit sched (sample_request f) with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error { Scheduler.reason; retry_after_s } ->
      Alcotest.(check string) "reason" "queue_full"
        (Wire.reject_reason_to_string reason);
      Alcotest.(check bool) "retry hint positive" true (retry_after_s > 0.0));
  (* draining one slot re-opens admission *)
  ignore (step_ok sched);
  (match Scheduler.submit sched (sample_request f) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "admission should re-open after step");
  (* sample budget cap *)
  match
    Scheduler.submit sched
      (sample_request ~n:(Scheduler.default_config.Scheduler.max_batch + 1) f)
  with
  | Ok _ -> Alcotest.fail "expected budget rejection"
  | Error { Scheduler.reason; _ } ->
      Alcotest.(check string) "budget reason" "batch_too_large"
        (Wire.reject_reason_to_string reason)

let test_scheduler_deadline_miss () =
  with_sched @@ fun sched ->
  let f = formula_of_string formula_a in
  let id = submit_ok sched (sample_request ~timeout_s:(-0.001) ~tag:"late" f) in
  let id', resp = step_ok sched in
  Alcotest.(check int) "same id" id id';
  (match resp with
  | Wire.Deadline_miss { rsp_tag } ->
      Alcotest.(check (option string)) "tag echoed" (Some "late") rsp_tag
  | _ -> Alcotest.fail "expected a deadline miss");
  (* a generous deadline sails through *)
  ignore (submit_ok sched (sample_request ~timeout_s:600.0 f) : int);
  match step_ok sched with
  | _, Wire.Ok_sample r ->
      Alcotest.(check int) "produced within deadline" 3 r.Wire.produced
  | _ -> Alcotest.fail "expected witnesses"

let test_scheduler_round_robin () =
  with_sched @@ fun sched ->
  let fa = formula_of_string formula_a in
  let fb = formula_of_string formula_b in
  let a1 = submit_ok sched (sample_request ~n:1 fa) in
  let a2 = submit_ok sched (sample_request ~n:1 fa) in
  let a3 = submit_ok sched (sample_request ~n:1 fa) in
  let b1 = submit_ok sched (sample_request ~n:1 fb) in
  (* one heavy formula (three queued requests) must not starve the
     other: dispatch alternates fingerprints *)
  let order = List.map fst (Scheduler.drain sched) in
  Alcotest.(check (list int)) "fair interleaving" [ a1; b1; a2; a3 ] order

let test_scheduler_cancellation () =
  with_sched @@ fun sched ->
  let f = formula_of_string formula_a in
  let id1 = submit_ok sched (sample_request ~tag:"one" f) in
  let id2 = submit_ok sched (sample_request ~tag:"two" f) in
  Alcotest.(check bool) "cancel pending" true (Scheduler.cancel sched id1);
  Alcotest.(check bool) "cancel is once" false (Scheduler.cancel sched id1);
  Alcotest.(check int) "one left" 1 (Scheduler.pending sched);
  let id', _ = step_ok sched in
  Alcotest.(check int) "cancelled request skipped" id2 id';
  Alcotest.(check bool) "drained" true (Scheduler.step sched = None);
  Alcotest.(check bool) "cancel after completion" false (Scheduler.cancel sched id2)

let test_scheduler_draining () =
  with_sched @@ fun sched ->
  let f = formula_of_string formula_a in
  ignore (submit_ok sched (sample_request f) : int);
  Scheduler.set_draining sched;
  (match Scheduler.submit sched (sample_request f) with
  | Error { Scheduler.reason = Wire.Draining; _ } -> ()
  | _ -> Alcotest.fail "expected draining rejection");
  (* already-admitted work still completes *)
  match Scheduler.drain sched with
  | [ (_, Wire.Ok_sample _) ] -> ()
  | _ -> Alcotest.fail "pending request should drain to completion"

let test_scheduler_unsat_and_bad_epsilon () =
  with_sched @@ fun sched ->
  let unsat = formula_of_string "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n" in
  ignore (submit_ok sched (sample_request unsat) : int);
  (match step_ok sched with
  | _, Wire.Unsat _ -> ()
  | _ -> Alcotest.fail "expected unsat response");
  let f = formula_of_string formula_a in
  ignore (submit_ok sched (sample_request ~epsilon:1.0 f) : int);
  match step_ok sched with
  | _, Wire.Error_msg _ -> ()
  | _ -> Alcotest.fail "epsilon <= 1.71 must surface as a structured error"

(* ------------------------------------------------------------------ *)
(* Determinism contract: the differential test. Service-path witnesses
   must be bit-identical to an offline [Unigen.sample_batch] with the
   same seeds on the canonical formula — on the cache miss (first
   request), on the cache hit (second request), and after an explicit
   eviction (cold again). *)

let offline_witnesses ~prepare_seed ~seed ~epsilon ~n formula =
  let f = Registry.canonical formula in
  let rng = Rng.create prepare_seed in
  match Sampling.Unigen.prepare ~rng ~epsilon f with
  | Error _ -> None
  | Ok prepared ->
      let outcomes =
        Sampling.Unigen.sample_batch ~max_attempts:20 ~seed prepared n
      in
      Some
        (Array.to_list outcomes
        |> List.filter_map (function
             | Ok m -> Some (Cnf.Model.to_dimacs m)
             | Error _ -> None))

let service_witnesses sched req =
  ignore (submit_ok sched req : int);
  match step_ok sched with
  | _, Wire.Ok_sample r -> (r.Wire.cache <> Wire.Cache_miss, r.Wire.witnesses)
  | _ -> Alcotest.fail "expected witnesses from the service path"

let test_differential_service_vs_offline () =
  (* a formula with enough witnesses to leave the easy case, so the
     ApproxMC-derived hash-size window is part of what must match *)
  let text =
    "p cnf 12 3\nc ind 1 2 3 4 5 6 7 8 9 10 0\n1 2 3 0\n-4 5 6 0\n7 -8 0\n"
  in
  let f = formula_of_string text in
  let n = 8 and seed = 33 and prepare_seed = 5 and epsilon = 6.0 in
  let reference =
    match offline_witnesses ~prepare_seed ~seed ~epsilon ~n f with
    | Some w -> w
    | None -> Alcotest.fail "offline preparation failed"
  in
  with_sched @@ fun sched ->
  let req = sample_request ~n ~seed ~prepare_seed ~epsilon f in
  let hit1, w1 = service_witnesses sched req in
  Alcotest.(check bool) "first request is a cold miss" false hit1;
  Alcotest.(check (list (list int))) "miss path bit-identical" reference w1;
  let hit2, w2 = service_witnesses sched req in
  Alcotest.(check bool) "second request hits the cache" true hit2;
  Alcotest.(check (list (list int))) "hit path bit-identical" reference w2;
  (* explicit eviction forces a re-preparation; still bit-identical *)
  (match Cache.keys_mru (Scheduler.cache sched) with
  | [ key ] -> Alcotest.(check bool) "evict" true (Cache.remove (Scheduler.cache sched) key)
  | _ -> Alcotest.fail "expected exactly one cached preparation");
  let hit3, w3 = service_witnesses sched req in
  Alcotest.(check bool) "cold again after eviction" false hit3;
  Alcotest.(check (list (list int))) "post-eviction bit-identical" reference w3;
  (* a different draw seed shares the preparation but draws new
     streams — matching its own offline run *)
  let seed' = 34 in
  let reference' =
    match offline_witnesses ~prepare_seed ~seed:seed' ~epsilon ~n f with
    | Some w -> w
    | None -> Alcotest.fail "offline preparation failed"
  in
  let hit4, w4 = service_witnesses sched (sample_request ~n ~seed:seed' ~prepare_seed ~epsilon f) in
  Alcotest.(check bool) "seed change still hits" true hit4;
  Alcotest.(check (list (list int))) "other seed bit-identical" reference' w4

(* qcheck property: for random formulas, cache hit and cold miss give
   identical draws for fixed seeds (and both match offline). *)
let prop_cache_hit_equals_cold_miss =
  QCheck2.Test.make ~count:15 ~name:"cache hit = cold miss draw results"
    QCheck2.Gen.(pair Test_util.Gen.formula_spec (int_bound 10_000))
    (fun (spec, seed) ->
      let f = Test_util.Gen.build_spec spec in
      let config =
        { Scheduler.default_config with Scheduler.cache_capacity = 2 }
      in
      let sched = Scheduler.create ~config () in
      Fun.protect ~finally:(fun () -> Scheduler.shutdown sched) @@ fun () ->
      let req = sample_request ~n:4 ~seed ~count_iterations:5 f in
      ignore (Scheduler.submit sched req |> Result.get_ok : int);
      let r1 = Scheduler.step sched in
      ignore (Scheduler.submit sched req |> Result.get_ok : int);
      let r2 = Scheduler.step sched in
      match (r1, r2) with
      | Some (_, Wire.Ok_sample a), Some (_, Wire.Ok_sample b) ->
          a.Wire.cache = Wire.Cache_miss
          && b.Wire.cache = Wire.Cache_ram
          && a.Wire.witnesses = b.Wire.witnesses
      | Some (_, Wire.Unsat _), Some (_, Wire.Unsat _) -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Parallel execution: the concurrency battery. Worker domains execute
   whole requests behind the scheduler; prepared-state ownership is
   sharded by fingerprint. Everything observable — witnesses, response
   multiplicity, pins, counters — must be indistinguishable from the
   serial path. *)

let parallel_config jobs =
  { Scheduler.default_config with Scheduler.jobs }

(* Submit one request and run the scheduler to exhaustion; works in
   serial and parallel mode. *)
let service_witnesses_drained sched req =
  let id = submit_ok sched req in
  match List.assoc_opt id (Scheduler.drain sched) with
  | Some (Wire.Ok_sample r) -> (r.Wire.cache <> Wire.Cache_miss, r.Wire.witnesses)
  | Some _ -> Alcotest.fail "expected witnesses from the service path"
  | None -> Alcotest.fail "request drained without a response"

let test_parallel_stress_many_clients () =
  (* many clients x many formulas against a 3-domain scheduler: no
     response lost, none duplicated, and every single response
     bit-identical to its own offline run *)
  with_sched ~config:(parallel_config 3) @@ fun sched ->
  let formulas =
    List.map formula_of_string [ formula_a; formula_b; formula_c ]
  in
  let expected = Hashtbl.create 16 in
  let submitted = ref [] in
  (* interleave submissions across formulas, like concurrent clients *)
  for k = 0 to 3 do
    List.iteri
      (fun j f ->
        let seed = 100 + (4 * j) + k in
        let id = submit_ok sched (sample_request ~n:2 ~seed f) in
        let reference =
          match offline_witnesses ~prepare_seed:1 ~seed ~epsilon:6.0 ~n:2 f with
          | Some w -> w
          | None -> Alcotest.fail "offline preparation failed"
        in
        Hashtbl.replace expected id reference;
        submitted := id :: !submitted)
      formulas
  done;
  let completions = Scheduler.drain sched in
  Alcotest.(check int) "no response lost or duplicated" 12
    (List.length completions);
  let ids = List.map fst completions in
  Alcotest.(check int) "distinct ids" 12
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun (id, resp) ->
      match resp with
      | Wire.Ok_sample r ->
          Alcotest.(check (list (list int)))
            (Printf.sprintf "request %d bit-identical to offline" id)
            (Hashtbl.find expected id) r.Wire.witnesses
      | _ -> Alcotest.fail "expected witnesses for every request")
    completions;
  (* requests on one formula serialise on its prepared state, so each
     of the three fingerprints pays exactly one cold preparation *)
  let misses =
    List.fold_left
      (fun n (_, resp) ->
        match resp with
        | Wire.Ok_sample r when r.Wire.cache = Wire.Cache_miss -> n + 1
        | _ -> n)
      0 completions
  in
  Alcotest.(check int) "one cold miss per fingerprint" 3 misses;
  Alcotest.(check int) "all pins released" 0
    (Cache.total_pin_count (Scheduler.cache sched))

let test_parallel_dispatch_shards_and_interleaves () =
  (* dispatch starts at most one request per fingerprint and rotates
     fairly: with a1 a2 a3 queued before b1, the two free workers take
     a1 and b1 — never two requests of one formula *)
  with_sched ~config:(parallel_config 2) @@ fun sched ->
  let fa = formula_of_string formula_a in
  let fb = formula_of_string formula_b in
  let a1 = submit_ok sched (sample_request ~n:1 fa) in
  let a2 = submit_ok sched (sample_request ~n:1 fa) in
  let a3 = submit_ok sched (sample_request ~n:1 fa) in
  let b1 = submit_ok sched (sample_request ~n:1 fb) in
  let started = Scheduler.dispatch sched in
  Alcotest.(check int) "both workers busy" 2 started;
  Alcotest.(check int) "in flight" 2 (Scheduler.in_flight sched);
  Alcotest.(check int) "rest still queued" 2 (Scheduler.queued sched);
  Alcotest.(check int) "pending counts both" 4 (Scheduler.pending sched);
  let completions = Scheduler.drain sched in
  let ids = List.map fst completions in
  Alcotest.(check (list int)) "all four complete" [ a1; a2; a3; b1 ]
    (List.sort compare ids);
  (* b1 was dispatched in the first wave despite three earlier
     requests on formula A: it completes before A's tail *)
  let pos id =
    let rec go i = function
      | [] -> Alcotest.fail "id missing from completions"
      | x :: tl -> if x = id then i else go (i + 1) tl
    in
    go 0 ids
  in
  Alcotest.(check bool) "fair interleaving across fingerprints" true
    (pos b1 < pos a3)

let test_differential_every_jobs_level () =
  (* the acceptance criterion: witnesses bit-identical to offline
     sampling at every jobs level, on the cache miss, the cache hit,
     and the post-eviction re-preparation *)
  let text =
    "p cnf 12 3\nc ind 1 2 3 4 5 6 7 8 9 10 0\n1 2 3 0\n-4 5 6 0\n7 -8 0\n"
  in
  let f = formula_of_string text in
  let n = 8 and seed = 33 and prepare_seed = 5 and epsilon = 6.0 in
  let reference =
    match offline_witnesses ~prepare_seed ~seed ~epsilon ~n f with
    | Some w -> w
    | None -> Alcotest.fail "offline preparation failed"
  in
  List.iter
    (fun jobs ->
      let label s = Printf.sprintf "jobs=%d: %s" jobs s in
      with_sched ~config:(parallel_config jobs) @@ fun sched ->
      let req = sample_request ~n ~seed ~prepare_seed ~epsilon f in
      let hit1, w1 = service_witnesses_drained sched req in
      Alcotest.(check bool) (label "cold miss") false hit1;
      Alcotest.(check (list (list int))) (label "miss bit-identical") reference w1;
      let hit2, w2 = service_witnesses_drained sched req in
      Alcotest.(check bool) (label "cache hit") true hit2;
      Alcotest.(check (list (list int))) (label "hit bit-identical") reference w2;
      (match Cache.keys_mru (Scheduler.cache sched) with
      | [ key ] ->
          Alcotest.(check bool) (label "evict") true
            (Cache.remove (Scheduler.cache sched) key)
      | _ -> Alcotest.fail (label "expected exactly one cached preparation"));
      let hit3, w3 = service_witnesses_drained sched req in
      Alcotest.(check bool) (label "cold after eviction") false hit3;
      Alcotest.(check (list (list int)))
        (label "post-eviction bit-identical") reference w3)
    [ 1; 2; 3 ]

let test_chaos_cancellation_under_parallelism () =
  with_sched ~config:(parallel_config 2) @@ fun sched ->
  let fa = formula_of_string formula_a in
  let fb = formula_of_string formula_b in
  let a1 = submit_ok sched (sample_request ~n:2 ~seed:1 fa) in
  let a2 = submit_ok sched (sample_request ~n:2 ~seed:2 fa) in
  let a3 = submit_ok sched (sample_request ~n:2 ~seed:3 fa) in
  let b1 = submit_ok sched (sample_request ~n:2 ~seed:4 fb) in
  let b2 = submit_ok sched (sample_request ~n:2 ~seed:5 fb) in
  ignore (Scheduler.dispatch sched : int);
  (* a1 and b1 are now on worker domains; a1's client disconnects *)
  Alcotest.(check bool) "cancel in-flight" true (Scheduler.cancel sched a1);
  Alcotest.(check bool) "cancel in-flight once" false (Scheduler.cancel sched a1);
  Alcotest.(check bool) "cancel queued" true (Scheduler.cancel sched a2);
  let completions = Scheduler.drain sched in
  let ids = List.sort compare (List.map fst completions) in
  Alcotest.(check (list int)) "cancelled responses suppressed, rest intact"
    (List.sort compare [ a3; b1; b2 ])
    ids;
  List.iter
    (fun (_, resp) ->
      match resp with
      | Wire.Ok_sample _ -> ()
      | _ -> Alcotest.fail "survivors must complete normally")
    completions;
  Alcotest.(check int) "no leaked pins after drain" 0
    (Cache.total_pin_count (Scheduler.cache sched));
  (* cancel a request in flight on the cache-hit path: its execution
     pin must be released when the worker finishes, even though the
     response is discarded *)
  let a4 = submit_ok sched (sample_request ~n:2 ~seed:6 fa) in
  ignore (Scheduler.dispatch sched : int);
  Alcotest.(check int) "execution pin held in flight" 1
    (Cache.total_pin_count (Scheduler.cache sched));
  Alcotest.(check bool) "cancel hit-path flight" true (Scheduler.cancel sched a4);
  Alcotest.(check (list int)) "cancelled hit suppressed" []
    (List.map fst (Scheduler.drain sched));
  Alcotest.(check int) "pin count returns to zero" 0
    (Cache.total_pin_count (Scheduler.cache sched));
  (* the cache survived the chaos: a fresh request still hits *)
  let hit, _ = service_witnesses_drained sched (sample_request ~n:2 ~seed:7 fa) in
  Alcotest.(check bool) "cache intact after cancellations" true hit

let metric_counter name =
  let snap = Obs.Metrics.snapshot () in
  Option.value ~default:0 (List.assoc_opt name snap.Obs.Metrics.counters)

let test_deadline_miss_counted_once_parallel () =
  (* misses detected on a worker domain (Prepare_timeout) and misses
     detected at dispatch (deadline already past) both funnel through
     one accounting point: exactly one count per missed request *)
  Obs.Metrics.enable ();
  let before = metric_counter "service.deadline_misses" in
  let text =
    "p cnf 12 3\nc ind 1 2 3 4 5 6 7 8 9 10 0\n1 2 3 0\n-4 5 6 0\n7 -8 0\n"
  in
  let f = formula_of_string text in
  with_sched ~config:(parallel_config 2) @@ fun sched ->
  for seed = 1 to 3 do
    ignore (submit_ok sched (sample_request ~n:2 ~seed ~timeout_s:0.0005 f) : int)
  done;
  let completions = Scheduler.drain sched in
  Alcotest.(check int) "all three complete" 3 (List.length completions);
  List.iter
    (fun (_, resp) ->
      match resp with
      | Wire.Deadline_miss _ -> ()
      | _ -> Alcotest.fail "expected every request to miss its deadline")
    completions;
  Alcotest.(check int) "each miss counted exactly once" 3
    (metric_counter "service.deadline_misses" - before)

(* retry_after_s must stay finite and non-negative no matter how the
   EWMA was seeded — in particular after instantly-completing requests
   (a 0-duration first sample must not zero or poison the hint). *)
let prop_retry_hint_sane =
  QCheck2.Test.make ~count:25 ~name:"retry_after_s finite and non-negative"
    QCheck2.Gen.(int_bound 4)
    (fun instant_misses ->
      let config =
        { Scheduler.default_config with Scheduler.queue_capacity = 2 }
      in
      let sched = Scheduler.create ~config () in
      Fun.protect ~finally:(fun () -> Scheduler.shutdown sched) @@ fun () ->
      let f = formula_of_string formula_a in
      for _ = 1 to instant_misses do
        (match Scheduler.submit sched (sample_request ~timeout_s:(-1.0) f) with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "admission unexpectedly closed");
        match Scheduler.step sched with
        | Some (_, Wire.Deadline_miss _) -> ()
        | _ -> Alcotest.fail "expected an instant deadline miss"
      done;
      (* fill the admission queue, then overflow it *)
      ignore (Scheduler.submit sched (sample_request f));
      ignore (Scheduler.submit sched (sample_request f));
      match Scheduler.submit sched (sample_request f) with
      | Ok _ -> false
      | Error { Scheduler.reason = Wire.Queue_full; retry_after_s } ->
          Float.is_finite retry_after_s && retry_after_s >= 0.0
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Durable spill tier: codec round trips and restart durability. A
   fresh scheduler over the same spill directory stands in for a
   restarted daemon (same code path: Cache.find's disk tier). *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_spill_dir f =
  let dir = Filename.temp_file "unigen_spill" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* two witnesses over {1,2}: stays in UniGen's easy enumeration case *)
let easy_text = "p cnf 3 2\nc ind 1 2 0\n1 2 0\n-1 -2 0\n"

(* enough free sampling variables to force the hashed case, so the
   ApproxMC-derived anchor (q, count estimate) rides in the payload *)
let hashed_text =
  "p cnf 12 3\nc ind 1 2 3 4 5 6 7 8 9 10 0\n1 2 3 0\n-4 5 6 0\n7 -8 0\n"

let cache_key ?(epsilon = 6.0) ?(prepare_seed = 5) ?count_iterations
    ?(incremental = true) ?(gauss = true) f =
  {
    Cache.fingerprint = Registry.fingerprint f;
    epsilon;
    prepare_seed;
    count_iterations;
    incremental;
    gauss;
  }

let prepared_entry ?(epsilon = 6.0) ?(prepare_seed = 5) f =
  let f = Registry.canonical f in
  let rng = Rng.create prepare_seed in
  match Sampling.Unigen.prepare ~rng ~epsilon f with
  | Ok prepared -> { Cache.prepared; formula = f; draws_served = 7 }
  | Error _ -> Alcotest.fail "preparation failed"

let draws ?(n = 6) ?(seed = 42) prepared =
  Sampling.Unigen.sample_batch ~max_attempts:20 ~seed prepared n
  |> Array.to_list
  |> List.filter_map (function
       | Ok m -> Some (Cnf.Model.to_dimacs m)
       | Error _ -> None)

let test_spill_codec_roundtrip () =
  List.iter
    (fun (label, text) ->
      let f = formula_of_string text in
      let key = cache_key f in
      let entry = prepared_entry f in
      let payload = Spill.encode key entry in
      match Spill.decode key payload with
      | Error reason -> Alcotest.failf "%s: decode failed: %s" label reason
      | Ok e ->
          Alcotest.(check int)
            (label ^ ": draws_served starts at zero")
            0 e.Cache.draws_served;
          Alcotest.(check string)
            (label ^ ": formula identity preserved")
            key.Cache.fingerprint
            (Registry.fingerprint e.Cache.formula);
          (* the rehydration contract: the imported preparation draws
             the very same witnesses as the original *)
          Alcotest.(check (list (list int)))
            (label ^ ": bit-identical draws")
            (draws entry.Cache.prepared) (draws e.Cache.prepared))
    [ ("easy phase", easy_text); ("hashed phase", hashed_text) ]

let replace_once ~sub ~by s =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then
      Alcotest.failf "substring %S not found" sub
    else if String.sub s i n = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)
    else go (i + 1)
  in
  go 0

let test_spill_decode_paranoia () =
  (* decode re-verifies every key-determining field, so a spill entry
     can never be served under preparation parameters it was not made
     with — each drifted key must read as a decode error (which the
     cache turns into quarantine + clean re-preparation) *)
  let f = formula_of_string hashed_text in
  let key = cache_key f in
  let payload = Spill.encode key (prepared_entry f) in
  let rejects label key' payload' =
    match Spill.decode key' payload' with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": stale payload accepted")
  in
  rejects "epsilon drift" { key with Cache.epsilon = 8.0 } payload;
  rejects "prepare-seed drift" { key with Cache.prepare_seed = 99 } payload;
  rejects "count-iterations drift"
    { key with Cache.count_iterations = Some 3 }
    payload;
  rejects "engine drift" { key with Cache.gauss = false } payload;
  rejects "incremental drift" { key with Cache.incremental = false } payload;
  rejects "fingerprint drift"
    { key with Cache.fingerprint = String.make 32 '0' }
    payload;
  rejects "garbage payload" key "not json at all";
  rejects "payload version drift" key
    (replace_once ~sub:Spill.version ~by:"unigen-prepared-v0" payload);
  (* the unmutated payload still decodes: the probes above failed for
     their own reasons, not because the fixture was broken *)
  match Spill.decode key payload with
  | Ok _ -> ()
  | Error reason -> Alcotest.failf "control decode failed: %s" reason

let spill_config dir =
  { Scheduler.default_config with Scheduler.spill_dir = Some dir }

let prep_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".prep")

let quarantined dir =
  let qdir = Filename.concat dir "quarantine" in
  if Sys.file_exists qdir then Array.length (Sys.readdir qdir) else 0

(* Run one request through a fresh scheduler generation over [dir];
   return where the preparation came from and the witnesses. *)
let generation dir req =
  with_sched ~config:(spill_config dir) @@ fun sched ->
  ignore (submit_ok sched req : int);
  match step_ok sched with
  | _, Wire.Ok_sample r -> (r.Wire.cache, r.Wire.witnesses)
  | _ -> Alcotest.fail "expected witnesses"

let test_scheduler_restart_disk_warm () =
  Obs.Metrics.enable ();
  with_spill_dir @@ fun dir ->
  let f = formula_of_string hashed_text in
  let req = sample_request ~n:6 ~seed:33 ~prepare_seed:5 f in
  let src1, w1 = generation dir req in
  Alcotest.(check bool) "generation 1 is a cold miss" true
    (src1 = Wire.Cache_miss);
  Alcotest.(check int) "preparation spilled on insert" 1
    (List.length (prep_files dir));
  (* generation 2 — a restarted daemon: the preparation is loaded from
     disk, ApproxMC never re-runs, witnesses are bit-identical *)
  let store_hits = metric_counter "store.hit" in
  with_sched ~config:(spill_config dir) @@ fun sched ->
  ignore (submit_ok sched req : int);
  (match step_ok sched with
  | _, Wire.Ok_sample r ->
      Alcotest.(check bool) "generation 2 is disk-warm" true
        (r.Wire.cache = Wire.Cache_disk);
      Alcotest.(check (list (list int))) "disk-warm bit-identical" w1
        r.Wire.witnesses
  | _ -> Alcotest.fail "expected witnesses");
  Alcotest.(check bool) "store.hit counted" true
    (metric_counter "store.hit" > store_hits);
  (* the disk hit promoted the entry into RAM *)
  ignore (submit_ok sched req : int);
  match step_ok sched with
  | _, Wire.Ok_sample r ->
      Alcotest.(check bool) "promoted to RAM" true
        (r.Wire.cache = Wire.Cache_ram);
      Alcotest.(check (list (list int))) "ram-warm bit-identical" w1
        r.Wire.witnesses
  | _ -> Alcotest.fail "expected witnesses"

let test_scheduler_restart_corrupt_spill () =
  Obs.Metrics.enable ();
  with_spill_dir @@ fun dir ->
  let f = formula_of_string hashed_text in
  let req = sample_request ~n:6 ~seed:33 ~prepare_seed:5 f in
  let corrupt_before = metric_counter "store.corrupt" in
  let _, w1 = generation dir req in
  (* bit rot: flip one byte of the spill entry. The store's checksum
     catches it; the restarted daemon quarantines and re-prepares,
     still landing on identical witnesses *)
  (match prep_files dir with
  | [ name ] ->
      let path = Filename.concat dir name in
      let ic = open_in_bin path in
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let b = Bytes.of_string raw in
      let i = Bytes.length b - 1 in
      Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
      Store.atomic_write ~dir ~path (Bytes.to_string b)
  | files -> Alcotest.failf "expected one spill entry, found %d" (List.length files));
  let src2, w2 = generation dir req in
  Alcotest.(check bool) "corrupt spill falls back to a clean miss" true
    (src2 = Wire.Cache_miss);
  Alcotest.(check (list (list int))) "re-prepared witnesses identical" w1 w2;
  Alcotest.(check int) "evidence quarantined" 1 (quarantined dir);
  Alcotest.(check int) "clean preparation re-spilled" 1
    (List.length (prep_files dir));
  (* codec-level corruption: a checksum-valid envelope whose payload
     the spill codec cannot decode — quarantined by the cache, not
     crashed on *)
  let st = Store.create ~dir () in
  Store.put st ~key:(Cache.key_to_string (cache_key f)) "{\"v\":\"nonsense\"}";
  let src3, w3 = generation dir req in
  Alcotest.(check bool) "undecodable payload is a miss" true
    (src3 = Wire.Cache_miss);
  Alcotest.(check (list (list int))) "witnesses still identical" w1 w3;
  (* both corruptions counted; the quarantine file itself is reused
     because both entries share the key's basename *)
  Alcotest.(check int) "both corruptions counted" 2
    (metric_counter "store.corrupt" - corrupt_before);
  Alcotest.(check bool) "evidence still present" true (quarantined dir >= 1)

(* ------------------------------------------------------------------ *)
(* Client-side fleet machinery: retry with backpressure-aware backoff,
   and the consistent-hash shard map. Both are pure of any socket. *)

let test_with_retry () =
  let rng = Rng.create 11 in
  let retry ?(max_attempts = 4) f =
    Client.with_retry ~max_attempts ~base_delay_s:0.001 ~max_delay_s:0.004 ~rng
      f
  in
  (* rejections retry until the daemon admits the request *)
  let calls = ref 0 in
  let resp =
    retry (fun () ->
        incr calls;
        if !calls < 3 then
          Wire.Rejected { reason = Wire.Queue_full; retry_after_s = 0.001 }
        else Wire.Bye)
  in
  Alcotest.(check bool) "eventual success surfaces" true (resp = Wire.Bye);
  Alcotest.(check int) "two retries" 3 !calls;
  (* attempts exhausted: the final rejection surfaces unchanged *)
  calls := 0;
  let final = Wire.Rejected { reason = Wire.Draining; retry_after_s = 0.0 } in
  let resp = retry ~max_attempts:2 (fun () -> incr calls; final) in
  Alcotest.(check bool) "final rejection unchanged" true (resp = final);
  Alcotest.(check int) "attempts bounded" 2 !calls;
  (* a daemon restarting under the client is transient *)
  calls := 0;
  let resp =
    retry (fun () ->
        incr calls;
        if !calls = 1 then
          raise (Unix.Unix_error (Unix.ECONNREFUSED, "connect", ""))
        else if !calls = 2 then raise (Client.Protocol_error "eof mid-frame")
        else Wire.Bye)
  in
  Alcotest.(check bool) "transient failures retried" true (resp = Wire.Bye);
  Alcotest.(check int) "one call per failure" 3 !calls;
  (* exhausted transient failures re-raise the last exception *)
  calls := 0;
  (match
     retry ~max_attempts:2 (fun () ->
         incr calls;
         raise (Unix.Unix_error (Unix.ECONNRESET, "read", "")))
   with
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      Alcotest.(check int) "transient attempts bounded" 2 !calls
  | _ -> Alcotest.fail "expected the transport error to surface");
  (* non-transient exceptions surface immediately *)
  calls := 0;
  (match retry (fun () -> incr calls; failwith "logic error") with
  | exception Failure _ ->
      Alcotest.(check int) "no retry on non-transient" 1 !calls
  | _ -> Alcotest.fail "expected the failure to surface");
  match retry ~max_attempts:0 (fun () -> Wire.Bye) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_attempts = 0 accepted"

let test_fleet_shard_map () =
  let sockets = [ "/run/u/a.sock"; "/run/u/b.sock"; "/run/u/c.sock" ] in
  let fleet = Client.Fleet.create sockets in
  let keys = List.init 300 (fun i -> Printf.sprintf "fingerprint-%03d" i) in
  (* the map is a pure function of the socket set: list order must not
     matter, or two clients would disagree on shard ownership *)
  let fleet_rev = Client.Fleet.create (List.rev sockets) in
  List.iter
    (fun k ->
      Alcotest.(check string) "order-independent routing"
        (Client.Fleet.route fleet k)
        (Client.Fleet.route fleet_rev k))
    keys;
  (* with 64 vnodes per socket, every replica owns a share *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s owns keys" s)
        true
        (List.exists (fun k -> Client.Fleet.route fleet k = s) keys))
    sockets;
  (* consistent hashing: dropping a replica remaps only its own keys *)
  let fleet_ab = Client.Fleet.create [ "/run/u/a.sock"; "/run/u/b.sock" ] in
  List.iter
    (fun k ->
      let owner = Client.Fleet.route fleet k in
      if owner <> "/run/u/c.sock" then
        Alcotest.(check string) "stable under replica removal" owner
          (Client.Fleet.route fleet_ab k))
    keys;
  (* degenerate inputs *)
  (match Client.Fleet.create [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty socket list accepted");
  match Client.Fleet.create ~vnodes:0 sockets with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "vnodes = 0 accepted"

(* ------------------------------------------------------------------ *)
(* Wire.Decoder fuzz: arbitrary payloads, arbitrary chunking, hostile
   length prefixes. Every malformed input must surface as a structured
   protocol error ([Frame_error] / [Json.Decode_error]) — never as an
   arbitrary exception escaping towards the select loop. *)

let prop_decoder_chunked_reassembly =
  QCheck2.Test.make ~count:100
    ~name:"decoder reassembles arbitrary frames under arbitrary chunking"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 5) (string_size ~gen:char (int_range 0 300)))
        (int_range 1 9))
    (fun (payloads, chunk) ->
      let stream = String.concat "" (List.map Wire.encode_frame payloads) in
      let d = Wire.Decoder.create () in
      let out = ref [] in
      let len = String.length stream in
      let pos = ref 0 in
      while !pos < len do
        let k = min chunk (len - !pos) in
        Wire.Decoder.feed d (Bytes.of_string (String.sub stream !pos k)) k;
        pos := !pos + k;
        let rec drain () =
          match Wire.Decoder.next d with
          | Some p ->
              out := p :: !out;
              drain ()
          | None -> ()
        in
        drain ()
      done;
      List.rev !out = payloads && Wire.Decoder.buffered d = 0)

let prop_decoder_truncated_frame =
  QCheck2.Test.make ~count:100
    ~name:"any strict prefix of a frame waits for more input"
    QCheck2.Gen.(
      pair (string_size ~gen:char (int_range 0 500)) (int_range 0 99))
    (fun (payload, pct) ->
      let frame = Wire.encode_frame payload in
      let keep = max 0 (min (String.length frame * pct / 100) (String.length frame - 1)) in
      let d = Wire.Decoder.create () in
      Wire.Decoder.feed d (Bytes.of_string (String.sub frame 0 keep)) keep;
      match Wire.Decoder.next d with
      | None -> true
      | Some _ -> false
      | exception _ -> false)

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  b

let test_decoder_frame_cap () =
  (* a header announcing exactly max_frame is legal: the decoder waits
     for the body *)
  let d = Wire.Decoder.create () in
  Wire.Decoder.feed d (be32 Wire.max_frame) 4;
  Alcotest.(check (option string)) "at cap: awaiting body" None
    (Wire.Decoder.next d);
  (* one byte past the cap is a protocol error, raised before any
     buffering *)
  let d2 = Wire.Decoder.create () in
  Wire.Decoder.feed d2 (be32 (Wire.max_frame + 1)) 4;
  Alcotest.check_raises "over cap" (Wire.Frame_error "frame exceeds max_frame")
    (fun () -> ignore (Wire.Decoder.next d2 : string option))

let prop_decoder_garbage_payload =
  QCheck2.Test.make ~count:200
    ~name:"garbage payload decodes as a frame, fails as a clean request error"
    QCheck2.Gen.(string_size ~gen:char (int_range 0 120))
    (fun garbage ->
      let frame = Wire.encode_frame garbage in
      let d = Wire.Decoder.create () in
      Wire.Decoder.feed d (Bytes.of_string frame) (String.length frame);
      match Wire.Decoder.next d with
      | Some payload ->
          (* framing is content-agnostic; the JSON layer must reject
             garbage with Decode_error and nothing else *)
          String.equal payload garbage
          && (match Wire.request_of_json (Json.of_string payload) with
             | (_ : Wire.request) -> true
             | exception Json.Decode_error _ -> true
             | exception _ -> false)
      | None -> false
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* End-to-end over a real Unix socket: daemon in a forked child, two
   requests on one connection, a tagged cancel race, clean shutdown. *)

let test_socket_end_to_end () =
  let dir = Filename.temp_file "unigen_service" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket_path = Filename.concat dir "daemon.sock" in
  match Unix.fork () with
  | 0 ->
      (* child: the daemon. [_exit] skips at_exit so the test runner's
         buffers are not flushed twice. *)
      (try
         Service.Server.run (Service.Server.default_config ~socket_path)
       with _ -> ());
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (* the happy path has already reaped the child *)
          (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
           with Unix.Unix_error (Unix.ECHILD, _, _) -> ());
          (try Sys.remove socket_path with Sys_error _ -> ());
          try Unix.rmdir dir with Unix.Unix_error _ -> ())
      @@ fun () ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      while
        (not (Sys.file_exists socket_path)) && Unix.gettimeofday () < deadline
      do
        ignore (Unix.select [] [] [] 0.02)
      done;
      Alcotest.(check bool) "daemon came up" true (Sys.file_exists socket_path);
      let req =
        Wire.Sample
          { Wire.default_sample_req with Wire.formula_text = formula_a; n = 4; seed = 9 }
      in
      Service.Client.with_connection ~socket_path @@ fun conn ->
      let r1 = Service.Client.request conn req in
      let r2 = Service.Client.request conn req in
      (match (r1, r2) with
      | Wire.Ok_sample a, Wire.Ok_sample b ->
          Alcotest.(check bool) "first cold" true
            (a.Wire.cache = Wire.Cache_miss);
          Alcotest.(check bool) "second warm" true
            (b.Wire.cache = Wire.Cache_ram);
          Alcotest.(check bool) "same witnesses over the wire" true
            (a.Wire.witnesses = b.Wire.witnesses);
          Alcotest.(check int) "produced" 4 a.Wire.produced
      | _ -> Alcotest.fail "expected two witness responses");
      (match Service.Client.request conn Wire.Status with
      | Wire.Metrics { values; info } ->
          Alcotest.(check bool) "cache hit visible in metrics" true
            (match List.assoc_opt "service.cache_hits" values with
            | Some v -> v >= 1.0
            | None -> false);
          (* provenance travels with the status answer *)
          Alcotest.(check (option string))
            "xor engine reported" (Some "gauss")
            (List.assoc_opt "xor_engine" info);
          Alcotest.(check (option string))
            "ocaml version reported" (Some Sys.ocaml_version)
            (List.assoc_opt "ocaml_version" info);
          Alcotest.(check bool) "uptime reported" true
            (match List.assoc_opt "server.uptime_seconds" values with
            | Some v -> v >= 0.0
            | None -> false)
      | _ -> Alcotest.fail "expected a metrics response");
      (match Service.Client.request conn Wire.Window with
      | Wire.Window_report w ->
          (* both requests above finished inside the rolling window *)
          Alcotest.(check bool) "window saw the requests" true
            (w.Wire.w_requests >= 2);
          Alcotest.(check bool) "window saw the cache hit" true
            (w.Wire.w_hits >= 1);
          Alcotest.(check bool) "percentiles monotone" true
            (w.Wire.p50_ms <= w.Wire.p90_ms && w.Wire.p90_ms <= w.Wire.p99_ms);
          Alcotest.(check string) "engine name" "gauss" w.Wire.xor_engine;
          Alcotest.(check bool) "per-fingerprint row present" true
            (match w.Wire.per_fp with
            | f :: _ -> f.Wire.fp_requests >= 2
            | [] -> false)
      | _ -> Alcotest.fail "expected a window report");
      (match Service.Client.request conn Wire.Shutdown with
      | Wire.Bye -> ()
      | _ -> Alcotest.fail "expected bye");
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "daemon exited cleanly" true
        (match status with Unix.WEXITED 0 -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Socket-level chaos against a parallel daemon: one client pipelines
   requests and disconnects without reading a byte; its work must be
   cancelled, its pins released, and a concurrent client's framing
   left untouched. *)

let with_daemon ?(scheduler = Scheduler.default_config) f =
  let dir = Filename.temp_file "unigen_service" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket_path = Filename.concat dir "daemon.sock" in
  match Unix.fork () with
  | 0 ->
      (try
         Service.Server.run
           {
             (Service.Server.default_config ~socket_path) with
             Service.Server.scheduler;
           }
       with _ -> ());
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
           with Unix.Unix_error (Unix.ECHILD, _, _) -> ());
          (try Sys.remove socket_path with Sys_error _ -> ());
          try Unix.rmdir dir with Unix.Unix_error _ -> ())
      @@ fun () ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      while
        (not (Sys.file_exists socket_path)) && Unix.gettimeofday () < deadline
      do
        ignore (Unix.select [] [] [] 0.02)
      done;
      Alcotest.(check bool) "daemon came up" true (Sys.file_exists socket_path);
      f ~socket_path ~pid

let test_chaos_abrupt_disconnect_socket () =
  with_daemon ~scheduler:(parallel_config 2) @@ fun ~socket_path ~pid ->
  (* connection A: pipeline three requests on three formulas, then
     vanish mid-flight without reading a single response *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  List.iteri
    (fun i text ->
      Wire.write_frame fd
        (Json.to_string
           (Wire.request_to_json
              (Wire.Sample
                 {
                   Wire.default_sample_req with
                   Wire.formula_text = text;
                   n = 4;
                   seed = 10 + i;
                   tag = Some (Printf.sprintf "doomed-%d" i);
                 }))))
    [ formula_a; formula_b; formula_c ];
  Unix.close fd;
  (* connection B keeps working: two requests on one formula (the
     second exercises the cache-hit execution-pin path), each response
     correctly framed and correctly tagged *)
  Service.Client.with_connection ~socket_path @@ fun conn ->
  let ask tag =
    match
      Service.Client.request conn
        (Wire.Sample
           {
             Wire.default_sample_req with
             Wire.formula_text = formula_a;
             n = 4;
             seed = 77;
             tag = Some tag;
           })
    with
    | Wire.Ok_sample r ->
        Alcotest.(check (option string)) "own tag echoed" (Some tag)
          r.Wire.rsp_tag;
        Alcotest.(check int) "witnesses delivered" 4 r.Wire.produced;
        r.Wire.witnesses
    | _ -> Alcotest.fail "survivor connection must get clean responses"
  in
  let w1 = ask "b-cold" in
  let w2 = ask "b-warm" in
  Alcotest.(check bool) "deterministic across A's chaos" true (w1 = w2);
  (* give the daemon a beat to finish any in-flight doomed work, then
     check nothing stayed pinned *)
  let rec pins_settle tries =
    match Service.Client.request conn Wire.Status with
    | Wire.Metrics { values; _ } -> (
        match List.assoc_opt "service.cache_pins" values with
        | Some 0.0 -> ()
        | Some _ when tries > 0 ->
            ignore (Unix.select [] [] [] 0.05);
            pins_settle (tries - 1)
        | Some v -> Alcotest.failf "leaked execution pins: %g" v
        | None -> Alcotest.fail "service.cache_pins gauge missing")
    | _ -> Alcotest.fail "expected a metrics response"
  in
  pins_settle 40;
  (match Service.Client.request conn Wire.Shutdown with
  | Wire.Bye -> ()
  | _ -> Alcotest.fail "expected bye");
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "daemon exited cleanly" true
    (match status with Unix.WEXITED 0 -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Fleet mode end to end: a supervisor forks two replica daemons on
   derived sockets; the client routes each formula to its shard by
   consistent hashing. The acceptance criterion: witnesses from the
   fleet are bit-identical to what a lone daemon (or the offline
   sampler) would serve. *)

let test_fleet_end_to_end () =
  let dir = Filename.temp_file "unigen_service" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket_path = Filename.concat dir "fleet.sock" in
  let shards = [ socket_path ^ ".0"; socket_path ^ ".1" ] in
  match Unix.fork () with
  | 0 ->
      (try
         Service.Server.run_fleet ~replicas:2
           (Service.Server.default_config ~socket_path)
       with _ -> ());
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
           with Unix.Unix_error (Unix.ECHILD, _, _) -> ());
          List.iter
            (fun p -> try Sys.remove p with Sys_error _ -> ())
            shards;
          try Unix.rmdir dir with Unix.Unix_error _ -> ())
      @@ fun () ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      while
        (not (List.for_all Sys.file_exists shards))
        && Unix.gettimeofday () < deadline
      do
        ignore (Unix.select [] [] [] 0.02)
      done;
      Alcotest.(check bool) "both replicas came up" true
        (List.for_all Sys.file_exists shards);
      let fleet = Client.Fleet.create shards in
      let ask sock text =
        match
          Client.call ~socket_path:sock
            (Wire.Sample
               {
                 Wire.default_sample_req with
                 Wire.formula_text = text;
                 n = 3;
                 seed = 9;
               })
        with
        | Wire.Ok_sample r -> r
        | _ -> Alcotest.fail "expected witnesses from the fleet"
      in
      List.iter
        (fun text ->
          let f = formula_of_string text in
          let shard = Client.Fleet.route fleet (Registry.fingerprint f) in
          let r1 = ask shard text in
          let r2 = ask shard text in
          Alcotest.(check bool) "routed repeat lands warm" true
            (r1.Wire.cache = Wire.Cache_miss && r2.Wire.cache = Wire.Cache_ram);
          Alcotest.(check bool) "warm witnesses identical" true
            (r1.Wire.witnesses = r2.Wire.witnesses);
          match offline_witnesses ~prepare_seed:1 ~seed:9 ~epsilon:6.0 ~n:3 f with
          | Some reference ->
              Alcotest.(check (list (list int)))
                "fleet bit-identical to a lone daemon" reference
                r1.Wire.witnesses
          | None -> Alcotest.fail "offline preparation failed")
        [ formula_a; formula_b; formula_c ];
      (* each replica knows its shard *)
      List.iteri
        (fun i sock ->
          match Client.call ~socket_path:sock Wire.Status with
          | Wire.Metrics { info; _ } ->
              Alcotest.(check (option string)) "shard id reported"
                (Some (Printf.sprintf "%d/2" i))
                (List.assoc_opt "shard" info)
          | _ -> Alcotest.fail "expected a metrics response")
        shards;
      (* shutting down every replica ends the supervisor cleanly *)
      List.iter
        (fun sock ->
          match Client.call ~socket_path:sock Wire.Shutdown with
          | Wire.Bye -> ()
          | _ -> Alcotest.fail "expected bye")
        shards;
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "fleet supervisor exited cleanly" true
        (match status with Unix.WEXITED 0 -> true | _ -> false)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "pinning" `Quick test_lru_pinning;
          Alcotest.test_case "capacity edge cases" `Quick test_lru_capacity_edge_cases;
          Alcotest.test_case "pin cycle and re-put" `Quick
            test_lru_pin_cycle_and_reput;
        ] );
      ( "registry",
        [
          Alcotest.test_case "fingerprint invariance" `Quick
            test_registry_fingerprint_invariance;
          Alcotest.test_case "canonical idempotent" `Quick
            test_registry_canonical_idempotent;
          Alcotest.test_case "interning" `Quick test_registry_interning;
          Alcotest.test_case "golden vectors" `Quick
            test_registry_golden_vectors;
          QCheck_alcotest.to_alcotest prop_dimacs_roundtrip_canonical;
          QCheck_alcotest.to_alcotest prop_canonical_preserves_models;
        ] );
      ( "wire",
        [
          Alcotest.test_case "framing incremental" `Quick test_wire_framing_incremental;
          Alcotest.test_case "json roundtrip" `Quick test_wire_json_roundtrip;
          Alcotest.test_case "frame size cap" `Quick test_decoder_frame_cap;
          QCheck_alcotest.to_alcotest prop_decoder_chunked_reassembly;
          QCheck_alcotest.to_alcotest prop_decoder_truncated_frame;
          QCheck_alcotest.to_alcotest prop_decoder_garbage_payload;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "backpressure" `Quick test_scheduler_backpressure;
          Alcotest.test_case "deadline miss" `Quick test_scheduler_deadline_miss;
          Alcotest.test_case "round robin" `Quick test_scheduler_round_robin;
          Alcotest.test_case "cancellation" `Quick test_scheduler_cancellation;
          Alcotest.test_case "draining" `Quick test_scheduler_draining;
          Alcotest.test_case "unsat and bad epsilon" `Quick
            test_scheduler_unsat_and_bad_epsilon;
          QCheck_alcotest.to_alcotest prop_retry_hint_sane;
        ] );
      ( "spill",
        [
          Alcotest.test_case "codec round trip" `Quick
            test_spill_codec_roundtrip;
          Alcotest.test_case "decode paranoia" `Quick test_spill_decode_paranoia;
          Alcotest.test_case "restart serves disk-warm" `Quick
            test_scheduler_restart_disk_warm;
          Alcotest.test_case "corrupt spill quarantined" `Quick
            test_scheduler_restart_corrupt_spill;
        ] );
      ( "client",
        [
          Alcotest.test_case "retry with backoff" `Quick test_with_retry;
          Alcotest.test_case "fleet shard map" `Quick test_fleet_shard_map;
        ] );
      (* the daemon tests fork, and OCaml 5 forbids Unix.fork once any
         domain has ever been spawned in the process — so they must run
         before every jobs>1 test below (alcotest runs suites in
         order) *)
      ( "daemon",
        [
          Alcotest.test_case "socket end to end" `Quick test_socket_end_to_end;
          Alcotest.test_case "chaos: abrupt disconnect under parallelism" `Quick
            test_chaos_abrupt_disconnect_socket;
          Alcotest.test_case "fleet end to end" `Quick test_fleet_end_to_end;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "stress: many clients x many formulas" `Quick
            test_parallel_stress_many_clients;
          Alcotest.test_case "dispatch shards by fingerprint" `Quick
            test_parallel_dispatch_shards_and_interleaves;
          Alcotest.test_case "chaos: cancellation under parallelism" `Quick
            test_chaos_cancellation_under_parallelism;
          Alcotest.test_case "deadline miss counted once" `Quick
            test_deadline_miss_counted_once_parallel;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "differential vs offline" `Quick
            test_differential_service_vs_offline;
          Alcotest.test_case "differential at every jobs level" `Quick
            test_differential_every_jobs_level;
          QCheck_alcotest.to_alcotest prop_cache_hit_equals_cold_miss;
        ] );
    ]

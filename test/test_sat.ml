(* Tests for the CDCL solver with native XOR propagation, validated
   against the brute-force reference solver. *)

let clause = Cnf.Clause.of_dimacs
let xor_c vars rhs = Cnf.Xor_clause.make vars rhs

(* all UNSAT verdicts on pure-CNF formulas in this suite come with a
   checked RUP refutation — see Test_util.Check *)
let solve_formula f = fst (Test_util.Check.checked_solve f)

let check_sat name f expected =
  match (solve_formula f, expected) with
  | Sat.Solver.Sat, true | Sat.Solver.Unsat, false -> ()
  | Sat.Solver.Sat, false -> Alcotest.failf "%s: expected UNSAT, got SAT" name
  | Sat.Solver.Unsat, true -> Alcotest.failf "%s: expected SAT, got UNSAT" name
  | Sat.Solver.Unknown, _ -> Alcotest.failf "%s: unexpected Unknown" name

(* ------------------------------------------------------------------ *)
(* Handcrafted instances *)

let test_empty_formula () =
  check_sat "empty" (Cnf.Formula.create ~num_vars:3 []) true

let test_unit_clauses () =
  let f = Cnf.Formula.create ~num_vars:2 [ clause [ 1 ]; clause [ -2 ] ] in
  let s = Sat.Solver.create f in
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  let m = Sat.Solver.model s in
  Alcotest.(check bool) "v1 true" true (Cnf.Model.value m 1);
  Alcotest.(check bool) "v2 false" false (Cnf.Model.value m 2)

let test_contradictory_units () =
  check_sat "x ∧ ¬x" (Cnf.Formula.create ~num_vars:1 [ clause [ 1 ]; clause [ -1 ] ]) false

let test_empty_clause_unsat () =
  check_sat "empty clause" (Cnf.Formula.create ~num_vars:1 [ clause [] ]) false

let test_implication_chain () =
  (* 1 ∧ (1→2) ∧ (2→3) ∧ ... ∧ (9→10) forces everything true *)
  let chain = List.init 9 (fun i -> clause [ -(i + 1); i + 2 ]) in
  let f = Cnf.Formula.create ~num_vars:10 (clause [ 1 ] :: chain) in
  let s = Sat.Solver.create f in
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  let m = Sat.Solver.model s in
  for v = 1 to 10 do
    Alcotest.(check bool) (Printf.sprintf "v%d" v) true (Cnf.Model.value m v)
  done

let pigeonhole ~pigeons ~holes =
  (* var p*holes + h + 1 encodes "pigeon p in hole h" *)
  let v p h = (p * holes) + h + 1 in
  let placed =
    List.init pigeons (fun p -> clause (List.init holes (fun h -> v p h)))
  in
  let exclusive =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 -> if p2 > p1 then Some (clause [ -(v p1 h); -(v p2 h) ]) else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  Cnf.Formula.create ~num_vars:(pigeons * holes) (placed @ exclusive)

let test_pigeonhole_unsat () =
  check_sat "PHP(4,3)" (pigeonhole ~pigeons:4 ~holes:3) false

let test_pigeonhole_sat () =
  check_sat "PHP(3,3)" (pigeonhole ~pigeons:3 ~holes:3) true

let test_pigeonhole_unsat_larger () =
  check_sat "PHP(6,5)" (pigeonhole ~pigeons:6 ~holes:5) false

(* ------------------------------------------------------------------ *)
(* XOR propagation *)

let test_xor_unit_propagation () =
  (* 1⊕2 = 1, with 1 forced true → 2 false *)
  let f =
    Cnf.Formula.create_with_xors ~num_vars:2 [ clause [ 1 ] ]
      [ xor_c [ 1; 2 ] true ]
  in
  let s = Sat.Solver.create f in
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  let m = Sat.Solver.model s in
  Alcotest.(check bool) "v2 forced false" false (Cnf.Model.value m 2)

let test_xor_chain_unsat () =
  (* 1⊕2=1, 2⊕3=1, 1⊕3=1: sum of lhs = 0 but sum of rhs = 1 *)
  let f =
    Cnf.Formula.create_with_xors ~num_vars:3 []
      [ xor_c [ 1; 2 ] true; xor_c [ 2; 3 ] true; xor_c [ 1; 3 ] true ]
  in
  check_sat "inconsistent xor triangle" f false

let test_xor_chain_sat () =
  let f =
    Cnf.Formula.create_with_xors ~num_vars:3 []
      [ xor_c [ 1; 2 ] true; xor_c [ 2; 3 ] true; xor_c [ 1; 3 ] false ]
  in
  check_sat "consistent xor triangle" f true

let test_xor_empty_true_unsat () =
  let f = Cnf.Formula.create_with_xors ~num_vars:1 [] [ xor_c [] true ] in
  check_sat "empty xor rhs=1" f false

let test_xor_empty_false_sat () =
  let f = Cnf.Formula.create_with_xors ~num_vars:1 [] [ xor_c [] false ] in
  check_sat "empty xor rhs=0" f true

let test_xor_long_forced () =
  (* v1..v9 forced true by units; v10 must make parity even *)
  let units = List.init 9 (fun i -> clause [ i + 1 ]) in
  let f =
    Cnf.Formula.create_with_xors ~num_vars:10 units
      [ xor_c [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] false ]
  in
  let s = Sat.Solver.create f in
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Alcotest.(check bool) "v10 forced" true (Cnf.Model.value (Sat.Solver.model s) 10)

let test_xor_system_unique_solution () =
  (* Gaussian system with a unique solution: x1=1, x2=0, x3=1 *)
  let f =
    Cnf.Formula.create_with_xors ~num_vars:3 []
      [
        xor_c [ 1 ] true;
        xor_c [ 1; 2 ] true;
        xor_c [ 2; 3 ] true;
      ]
  in
  let s = Sat.Solver.create f in
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  let m = Sat.Solver.model s in
  Alcotest.(check (list int)) "unique model" [ 1; -2; 3 ] (Cnf.Model.to_dimacs m)

(* ------------------------------------------------------------------ *)
(* Incremental use (blocking-clause style) *)

let test_incremental_blocking () =
  (* enumerate all 4 models of a 2-variable free formula by blocking *)
  let f = Cnf.Formula.create ~num_vars:2 [] in
  let s = Sat.Solver.create f in
  let found = ref [] in
  let blocked = ref [] in
  let rec loop () =
    match Sat.Solver.solve s with
    | Sat.Solver.Sat ->
        let m = Sat.Solver.model s in
        found := Cnf.Model.key m :: !found;
        let block =
          [
            Cnf.Lit.make 1 (not (Cnf.Model.value m 1));
            Cnf.Lit.make 2 (not (Cnf.Model.value m 2));
          ]
        in
        blocked := Cnf.Clause.of_list block :: !blocked;
        Sat.Solver.add_clause s block;
        loop ()
    | Sat.Solver.Unsat ->
        (* the incremental verdict covers f + the blocking clauses:
           certify that combined formula with a fresh logged solve *)
        Test_util.Check.assert_refutable (Cnf.Formula.add_clauses f !blocked)
    | Sat.Solver.Unknown -> Alcotest.fail "unexpected Unknown"
  in
  loop ();
  Alcotest.(check int) "4 distinct models" 4
    (List.length (List.sort_uniq String.compare !found))

let test_conflict_limit_returns_unknown () =
  (* a hard instance with a 1-conflict budget must give up *)
  let f = pigeonhole ~pigeons:7 ~holes:6 in
  let s = Sat.Solver.create f in
  match Sat.Solver.solve ~conflict_limit:1 s with
  | Sat.Solver.Unknown -> ()
  | Sat.Solver.Sat -> Alcotest.fail "PHP(7,6) cannot be SAT"
  | Sat.Solver.Unsat ->
      (* acceptable only if it solved within the first restart budget;
         PHP(7,6) needs far more than 100 conflicts *)
      Alcotest.fail "expected budget exhaustion"

let test_solver_stats_move () =
  let f = pigeonhole ~pigeons:5 ~holes:4 in
  let s = Sat.Solver.create f in
  ignore (Sat.Solver.solve s);
  Alcotest.(check bool) "conflicts counted" true (Sat.Solver.conflicts s > 0);
  Alcotest.(check bool) "decisions counted" true (Sat.Solver.decisions s > 0);
  Alcotest.(check bool) "propagations counted" true (Sat.Solver.propagations s > 0)

(* ------------------------------------------------------------------ *)
(* Bsat *)

let test_bsat_enumerates_all () =
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ 1; 2; 3 ] ] in
  let out = Sat.Bsat.enumerate ~limit:100 f in
  Alcotest.(check int) "7 models" 7 (List.length out.Sat.Bsat.models);
  Alcotest.(check bool) "exhausted" true out.Sat.Bsat.exhausted

let test_bsat_respects_limit () =
  let f = Cnf.Formula.create ~num_vars:4 [] in
  let out = Sat.Bsat.enumerate ~limit:5 f in
  Alcotest.(check int) "limit hit" 5 (List.length out.Sat.Bsat.models);
  Alcotest.(check bool) "not exhausted" false out.Sat.Bsat.exhausted

let test_bsat_unsat () =
  let f = Cnf.Formula.create ~num_vars:1 [ clause [ 1 ]; clause [ -1 ] ] in
  let out = Sat.Bsat.enumerate ~limit:10 f in
  Alcotest.(check int) "no models" 0 (List.length out.Sat.Bsat.models);
  Alcotest.(check bool) "exhausted" true out.Sat.Bsat.exhausted

let test_bsat_projected_blocking () =
  (* v3 is functionally determined (v3 = v1): blocking on {1,2} must
     enumerate exactly the 4 projections, each extended consistently *)
  let f =
    Cnf.Formula.create ~sampling_set:[ 1; 2 ] ~num_vars:3
      [ clause [ -1; 3 ]; clause [ 1; -3 ] ]
  in
  let out = Sat.Bsat.enumerate ~limit:100 f in
  Alcotest.(check int) "4 projected models" 4 (List.length out.Sat.Bsat.models);
  Alcotest.(check bool) "exhausted" true out.Sat.Bsat.exhausted;
  List.iter
    (fun m ->
      Alcotest.(check bool) "v3 = v1" (Cnf.Model.value m 1) (Cnf.Model.value m 3))
    out.Sat.Bsat.models

let test_bsat_projection_collapses_classes () =
  (* free v1 v2, sampling set {1}: only 2 cells *)
  let f = Cnf.Formula.create ~sampling_set:[ 1 ] ~num_vars:2 [] in
  let out = Sat.Bsat.enumerate ~limit:100 f in
  Alcotest.(check int) "2 projected models" 2 (List.length out.Sat.Bsat.models)

let test_bsat_count_upto () =
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ 1 ] ] in
  Alcotest.(check int) "4 models" 4 (Sat.Bsat.count_upto ~limit:100 f);
  Alcotest.(check int) "clamped" 2 (Sat.Bsat.count_upto ~limit:2 f)

(* ------------------------------------------------------------------ *)
(* Brute-force reference consistency *)

let test_brute_simple () =
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ 1; 2 ]; clause [ -1; -2 ] ] in
  (* models: exactly one of v1,v2 true; v3 free → 4 models *)
  Alcotest.(check int) "count" 4 (Sat.Brute.count f);
  Alcotest.(check bool) "sat" true (Sat.Brute.is_sat f)

let test_brute_projected () =
  let f = Cnf.Formula.create ~num_vars:3 [ clause [ -1; 3 ]; clause [ 1; -3 ] ] in
  Alcotest.(check int) "8->4 on {1,2}" 4 (Sat.Brute.count_projected f [| 1; 2 |])

(* ------------------------------------------------------------------ *)
(* Luby sequence (regression: term 2 used to recurse forever) *)

let test_luby_sequence () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  let actual = List.init 15 (fun i -> Sat.Luby.term (i + 1)) in
  Alcotest.(check (list int)) "first 15 terms" expected actual

let test_luby_budget () =
  Alcotest.(check int) "budget scales" 400 (Sat.Luby.budget ~base:100 7)

(* ------------------------------------------------------------------ *)
(* Randomized cross-checks *)

let prop_solver_agrees_with_brute =
  QCheck2.Test.make ~count:400 ~name:"cdcl agrees with brute force"
    Test_util.Gen.formula_spec
    (fun spec ->
      let f = Test_util.Gen.build_spec spec in
      let expected = Sat.Brute.is_sat f in
      match Test_util.Check.checked_solve f with
      | Sat.Solver.Sat, s ->
          expected && Cnf.Model.satisfies f (Sat.Solver.model s)
      | Sat.Solver.Unsat, _ -> not expected
      | Sat.Solver.Unknown, _ -> false)

let prop_bsat_counts_match_brute =
  QCheck2.Test.make ~count:200 ~name:"bsat enumeration count = brute count"
    Test_util.Gen.formula_spec
    (fun spec ->
      let f = Test_util.Gen.build_spec spec in
      let expected = Sat.Brute.count f in
      let out = Sat.Bsat.enumerate ~limit:(expected + 10) f in
      out.Sat.Bsat.exhausted && List.length out.Sat.Bsat.models = expected)

let prop_bsat_projected_counts_match_brute =
  QCheck2.Test.make ~count:200 ~name:"projected bsat count = brute projected count"
    QCheck2.Gen.(pair Test_util.Gen.formula_spec (int_bound 100000))
    (fun (spec, pseed) ->
      let f = Test_util.Gen.build_spec spec in
      let nv = f.Cnf.Formula.num_vars in
      let rng = Rng.create pseed in
      (* random non-empty projection set *)
      let proj =
        List.filter (fun _ -> Rng.bool rng) (List.init nv (fun i -> i + 1))
      in
      let proj = if proj = [] then [ 1 ] else proj in
      let proj = Array.of_list proj in
      let expected = Sat.Brute.count_projected f proj in
      let out = Sat.Bsat.enumerate ~blocking_vars:proj ~limit:(expected + 10) f in
      out.Sat.Bsat.exhausted && List.length out.Sat.Bsat.models = expected)

let prop_native_xor_matches_blasted =
  (* at sizes beyond brute force, the native XOR engine must agree
     with solving the CNF expansion of the same formula *)
  QCheck2.Test.make ~count:100 ~name:"native xor verdict = blasted verdict"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 8 16))
    (fun (seed, nv) ->
      let rng = Rng.create seed in
      let f =
        Test_util.Gen.random_formula_with_xors rng ~num_vars:nv
          ~num_clauses:(2 * nv) ~num_xors:3 ~width:3
      in
      let native = Sat.Solver.create f in
      let blasted = Sat.Solver.create (Cnf.Formula.blast_xors f) in
      match (Sat.Solver.solve native, Sat.Solver.solve blasted) with
      | Sat.Solver.Sat, Sat.Solver.Sat ->
          Cnf.Model.satisfies f (Sat.Solver.model native)
      | Sat.Solver.Unsat, Sat.Solver.Unsat -> true
      | _ -> false)

let test_deadline_returns_unknown () =
  (* a deadline in the past must abort promptly with Unknown on an
     instance too hard to finish instantly *)
  let f = pigeonhole ~pigeons:10 ~holes:9 in
  let s = Sat.Solver.create f in
  let deadline = Unix.gettimeofday () +. 0.05 in
  let t0 = Unix.gettimeofday () in
  let r = Sat.Solver.solve ~deadline s in
  let elapsed = Unix.gettimeofday () -. t0 in
  match r with
  | Sat.Solver.Unknown ->
      Alcotest.(check bool) (Printf.sprintf "prompt (%.2fs)" elapsed) true
        (elapsed < 5.0)
  | Sat.Solver.Unsat -> () (* finished within the slice: also fine *)
  | Sat.Solver.Sat -> Alcotest.fail "PHP(10,9) cannot be SAT"

let test_bsat_deadline () =
  let f = pigeonhole ~pigeons:10 ~holes:9 in
  let out =
    Sat.Bsat.enumerate ~deadline:(Unix.gettimeofday () +. 0.05) ~limit:5 f
  in
  Alcotest.(check bool) "flagged or finished" true
    (out.Sat.Bsat.timed_out || out.Sat.Bsat.exhausted)

let prop_bsat_models_distinct_on_projection =
  QCheck2.Test.make ~count:100 ~name:"bsat models pairwise distinct on projection"
    Test_util.Gen.formula_spec
    (fun spec ->
      let f = Test_util.Gen.build_spec spec in
      let out = Sat.Bsat.enumerate ~limit:50 f in
      let proj = Cnf.Formula.sampling_vars f in
      let keys =
        List.map (fun m -> Cnf.Model.key (Cnf.Model.restrict m proj)) out.Sat.Bsat.models
      in
      List.length keys = List.length (List.sort_uniq String.compare keys))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_solver_agrees_with_brute;
      prop_bsat_counts_match_brute;
      prop_bsat_projected_counts_match_brute;
      prop_bsat_models_distinct_on_projection;
      prop_native_xor_matches_blasted;
    ]

let () =
  Alcotest.run "sat"
    [
      ( "basic",
        [
          Alcotest.test_case "empty formula" `Quick test_empty_formula;
          Alcotest.test_case "unit clauses" `Quick test_unit_clauses;
          Alcotest.test_case "contradictory units" `Quick test_contradictory_units;
          Alcotest.test_case "empty clause" `Quick test_empty_clause_unsat;
          Alcotest.test_case "implication chain" `Quick test_implication_chain;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "pigeonhole sat" `Quick test_pigeonhole_sat;
          Alcotest.test_case "pigeonhole unsat larger" `Quick test_pigeonhole_unsat_larger;
        ] );
      ( "xor",
        [
          Alcotest.test_case "unit propagation" `Quick test_xor_unit_propagation;
          Alcotest.test_case "chain unsat" `Quick test_xor_chain_unsat;
          Alcotest.test_case "chain sat" `Quick test_xor_chain_sat;
          Alcotest.test_case "empty true" `Quick test_xor_empty_true_unsat;
          Alcotest.test_case "empty false" `Quick test_xor_empty_false_sat;
          Alcotest.test_case "long forced" `Quick test_xor_long_forced;
          Alcotest.test_case "unique solution system" `Quick test_xor_system_unique_solution;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "blocking enumeration" `Quick test_incremental_blocking;
          Alcotest.test_case "conflict limit" `Quick test_conflict_limit_returns_unknown;
          Alcotest.test_case "deadline" `Quick test_deadline_returns_unknown;
          Alcotest.test_case "bsat deadline" `Quick test_bsat_deadline;
          Alcotest.test_case "stats" `Quick test_solver_stats_move;
        ] );
      ( "bsat",
        [
          Alcotest.test_case "enumerates all" `Quick test_bsat_enumerates_all;
          Alcotest.test_case "respects limit" `Quick test_bsat_respects_limit;
          Alcotest.test_case "unsat" `Quick test_bsat_unsat;
          Alcotest.test_case "projected blocking" `Quick test_bsat_projected_blocking;
          Alcotest.test_case "projection collapses" `Quick test_bsat_projection_collapses_classes;
          Alcotest.test_case "count_upto" `Quick test_bsat_count_upto;
        ] );
      ( "luby",
        [
          Alcotest.test_case "sequence" `Quick test_luby_sequence;
          Alcotest.test_case "budget" `Quick test_luby_budget;
        ] );
      ( "brute",
        [
          Alcotest.test_case "simple" `Quick test_brute_simple;
          Alcotest.test_case "projected" `Quick test_brute_projected;
        ] );
      ("properties", qcheck_cases);
    ]
